package feature

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/table"
)

// cacheTables builds a pair of tables exercising every cache code path:
// token-set features over medium/long text columns, a numeric column (no
// SetFn, string fallback), and scattered nulls on both sides.
func cacheTables(t *testing.T, rows int, seed int64) (*table.Table, *table.Table, *table.Table, *table.Catalog) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := []string{"acme", "widget", "store", "global", "supply", "north", "west", "madison", "dane", "county"}
	phrase := func(n int) string {
		out := make([]string, n)
		for i := range out {
			out[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(out, " ")
	}
	sch := table.MustSchema(
		table.Column{Name: "id", Kind: table.KindString},
		table.Column{Name: "name", Kind: table.KindString},
		table.Column{Name: "desc", Kind: table.KindString},
		table.Column{Name: "age", Kind: table.KindInt},
	)
	mkTable := func(name, prefix string) *table.Table {
		tab := table.New(name, sch)
		for i := 0; i < rows; i++ {
			nameV := table.Value(table.String(phrase(3 + rng.Intn(3))))
			descV := table.Value(table.String(phrase(9 + rng.Intn(6))))
			ageV := table.Value(table.Int(int64(20 + rng.Intn(40))))
			// Sprinkle nulls so the cache's null handling is exercised.
			if rng.Intn(7) == 0 {
				nameV = table.Null(table.KindString)
			}
			if rng.Intn(7) == 0 {
				descV = table.Null(table.KindString)
			}
			if rng.Intn(7) == 0 {
				ageV = table.Null(table.KindInt)
			}
			tab.MustAppend(table.String(fmt.Sprintf("%s%d", prefix, i)), nameV, descV, ageV)
		}
		tab.MustSetKey("id")
		return tab
	}
	a := mkTable("A", "a")
	b := mkTable("B", "b")
	cat := table.NewCatalog()
	pairs, err := table.NewPairTable("C", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		// Random pairing (not just the diagonal) so cached rows are hit in
		// mixed order and repeatedly.
		table.AppendPair(pairs, fmt.Sprintf("a%d", rng.Intn(rows)), fmt.Sprintf("b%d", rng.Intn(rows)))
	}
	return a, b, pairs, cat
}

// TestVectorsCacheEquivalence pins the token-cache contract promised in the
// Feature doc comment: extraction through the per-row interning cache is bit
// for bit identical to the string path, across missing policies, null
// values, numeric fallbacks, and worker counts.
func TestVectorsCacheEquivalence(t *testing.T) {
	a, b, pairs, cat := cacheTables(t, 60, 31)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	hasSetFn := false
	for _, f := range s.Features {
		if f.SetFn != nil && f.Tok != nil {
			hasSetFn = true
		}
	}
	if !hasSetFn {
		t.Fatal("generated set has no token-set features; test exercises nothing")
	}
	for _, missing := range []MissingPolicy{MissingZero, MissingNeutral} {
		s.Missing = missing
		want, err := Vectors(s, pairs, cat, ExtractOptions{NoTokenCache: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 0} {
			got, err := Vectors(s, pairs, cat, ExtractOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("missing=%v workers=%d: cached vectors diverge from string path", missing, workers)
			}
		}
	}
}

// TestBuildTokenCacheNilWhenNoSetFeatures: a set of purely string features
// must not pay for (or allocate) a cache.
func TestBuildTokenCacheNilWhenNoSetFeatures(t *testing.T) {
	a, b, _, _ := cacheTables(t, 5, 7)
	s := &Set{}
	if err := s.Add(Feature{Name: "exact_name", LAttr: "name", RAttr: "name", Fn: func(l, r string) float64 {
		if l == r {
			return 1
		}
		return 0
	}}); err != nil {
		t.Fatal(err)
	}
	if c := buildTokenCache(s, a, b); c != nil {
		t.Fatal("cache built for a set with no token-set features")
	}
}

// TestCacheFallsBackOnMissingAttr: a token-set feature whose attribute is
// absent from one table scores missing through the cache exactly like the
// string path does.
func TestCacheFallsBackOnMissingAttr(t *testing.T) {
	a, b, pairs, cat := cacheTables(t, 10, 13)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Graft on a token-set feature referencing a column neither table has.
	ghost := s.Features[0]
	ghost.Name = "ghost_feature"
	ghost.LAttr, ghost.RAttr = "no_such_col", "no_such_col"
	if err := s.Add(ghost); err != nil {
		t.Fatal(err)
	}
	want, err := Vectors(s, pairs, cat, ExtractOptions{NoTokenCache: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Vectors(s, pairs, cat, ExtractOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached vectors diverge when a feature's attribute is missing")
	}
}
