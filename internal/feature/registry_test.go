package feature

import (
	"testing"
)

func TestNewFeature(t *testing.T) {
	f, err := NewFeature("jaccard_3gram", "name")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "jaccard_3gram_name" || f.LAttr != "name" || f.RAttr != "name" {
		t.Errorf("feature = %+v", f)
	}
	if got := f.Fn("acme corp", "acme corp"); got != 1 {
		t.Errorf("identical strings = %v", got)
	}
	if _, err := NewFeature("ghost", "name"); err == nil {
		t.Error("want unknown-kind error")
	}
}

func TestBuilderKinds(t *testing.T) {
	kinds := BuilderKinds()
	if len(kinds) < 15 {
		t.Errorf("only %d builder kinds registered", len(kinds))
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i] <= kinds[i-1] {
			t.Fatal("kinds not sorted")
		}
	}
}

func TestSpecsRoundTrip(t *testing.T) {
	a, b := twoTables(t)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := s.Specs()
	if err != nil {
		t.Fatalf("auto-generated sets must serialize: %v", err)
	}
	if len(specs) != s.Len() {
		t.Fatalf("specs = %d, features = %d", len(specs), s.Len())
	}
	back, err := FromSpecs(specs, s.Missing)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip lost features: %d vs %d", back.Len(), s.Len())
	}
	// Scores agree on a sample pair.
	v1 := s.Vector(a, b, a.Row(0), b.Row(0))
	v2 := back.Vector(a, b, a.Row(0), b.Row(0))
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("feature %s scored differently after round trip: %v vs %v",
				s.Names()[i], v1[i], v2[i])
		}
	}
}

func TestSpecsRejectsCustomFeatures(t *testing.T) {
	s := &Set{}
	if err := s.Add(Feature{Name: "my_custom_thing", LAttr: "a", RAttr: "b", Fn: func(l, r string) float64 { return 0 }}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Specs(); err == nil {
		t.Fatal("custom features must not serialize silently")
	}
}
