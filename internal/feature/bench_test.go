package feature

import (
	"fmt"
	"testing"

	"repro/internal/table"
)

func benchSetup(b *testing.B, pairs int) (*Set, *table.Table, *table.Catalog) {
	b.Helper()
	sch := table.StringSchema("id", "name", "city", "zip")
	a := table.New("A", sch)
	bt := table.New("B", sch)
	n := pairs
	for i := 0; i < n; i++ {
		a.MustAppend(table.String(fmt.Sprintf("a%d", i)),
			table.String(fmt.Sprintf("acme widgets store %d", i)),
			table.String("madison"), table.String(fmt.Sprintf("%05d", i)))
		bt.MustAppend(table.String(fmt.Sprintf("b%d", i)),
			table.String(fmt.Sprintf("acme widget store %d", i)),
			table.String("madison"), table.String(fmt.Sprintf("%05d", i)))
	}
	if err := a.SetKey("id"); err != nil {
		b.Fatal(err)
	}
	if err := bt.SetKey("id"); err != nil {
		b.Fatal(err)
	}
	cat := table.NewCatalog()
	p, err := table.NewPairTable("C", a, bt, cat)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		table.AppendPair(p, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	fs, err := AutoGenerate(a, bt)
	if err != nil {
		b.Fatal(err)
	}
	return fs, p, cat
}

func BenchmarkVectors1K(b *testing.B) {
	fs, p, cat := benchSetup(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Vectors(fs, p, cat, ExtractOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectors1KSerial(b *testing.B) {
	fs, p, cat := benchSetup(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Vectors(fs, p, cat, ExtractOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoGenerate(b *testing.B) {
	fs, _, _ := benchSetup(b, 100)
	_ = fs
	sch := table.StringSchema("id", "name", "city", "zip")
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.String("x"), table.String("y"), table.String("z"))
	bt := a.Clone()
	bt.SetName("B")
	a.MustSetKey("id")
	bt.MustSetKey("id")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AutoGenerate(a, bt); err != nil {
			b.Fatal(err)
		}
	}
}
