package feature

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/tokenize"
)

// builders maps a builder kind — the prefix of generated feature names,
// e.g. "jaccard_3gram" in "jaccard_3gram_name" — to its PairFunc. The
// registry is what lets a feature set round-trip through the workflow
// persistence layer: a serialized feature is just (kind, attribute).
var builders = map[string]PairFunc{
	"exact":            sim.ExactMatch,
	"lev":              sim.Levenshtein,
	"jaro":             sim.Jaro,
	"jaro_winkler":     sim.JaroWinkler,
	"soundex":          sim.SoundexSim,
	"rel_diff":         RelDiff,
	"monge_elkan_jw":   mongeElkanJW,
	"needleman_wunsch": sim.NeedlemanWunsch,
	"smith_waterman":   sim.SmithWaterman,
	"affine_gap":       sim.AffineGap,
	"hamming":          sim.Hamming,
	"jaccard_ws":       tokenized(tokenize.Whitespace{ReturnSet: true}, sim.Jaccard),
	"jaccard_3gram":    tokenized(tokenize.QGram{Q: 3, ReturnSet: true}, sim.Jaccard),
	"jaccard_2gram":    tokenized(tokenize.QGram{Q: 2, ReturnSet: true}, sim.Jaccard),
	"cosine_ws":        tokenized(tokenize.Whitespace{ReturnSet: true}, sim.CosineSet),
	"dice_ws":          tokenized(tokenize.Whitespace{ReturnSet: true}, sim.Dice),
	"overlap_coeff_ws": tokenized(tokenize.Whitespace{ReturnSet: true}, sim.OverlapCoefficient),
}

// BuilderKinds returns the registered builder kinds, sorted.
func BuilderKinds() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewFeature constructs the feature "<kind>_<attr>" comparing the same
// attribute of both tables with the registered builder.
func NewFeature(kind, attr string) (Feature, error) {
	fn, ok := builders[kind]
	if !ok {
		return Feature{}, fmt.Errorf("feature: unknown builder kind %q (have %v)", kind, BuilderKinds())
	}
	return Feature{Name: kind + "_" + attr, LAttr: attr, RAttr: attr, Fn: fn}, nil
}

// Spec is the serializable form of one feature. Only same-attribute,
// registry-built features round-trip; custom Fn features must be re-added
// in code after loading.
type Spec struct {
	Kind string `json:"kind"`
	Attr string `json:"attr"`
}

// Specs returns the serializable form of the set. It fails when the set
// contains a feature whose name does not decompose into a registered
// builder kind plus attribute (i.e. a custom feature).
func (s *Set) Specs() ([]Spec, error) {
	out := make([]Spec, 0, len(s.Features))
	for _, f := range s.Features {
		kind, ok := kindOf(f.Name, f.LAttr)
		if !ok {
			return nil, fmt.Errorf("feature: %q is not registry-built and cannot be serialized", f.Name)
		}
		out = append(out, Spec{Kind: kind, Attr: f.LAttr})
	}
	return out, nil
}

// kindOf recovers the builder kind from a generated feature name.
func kindOf(name, attr string) (string, bool) {
	suffix := "_" + attr
	if len(name) <= len(suffix) || name[len(name)-len(suffix):] != suffix {
		return "", false
	}
	kind := name[:len(name)-len(suffix)]
	_, ok := builders[kind]
	return kind, ok
}

// FromSpecs rebuilds a feature set from its serializable form.
func FromSpecs(specs []Spec, missing MissingPolicy) (*Set, error) {
	s := &Set{Missing: missing}
	for _, sp := range specs {
		f, err := NewFeature(sp.Kind, sp.Attr)
		if err != nil {
			return nil, err
		}
		if err := s.Add(f); err != nil {
			return nil, err
		}
	}
	return s, nil
}
