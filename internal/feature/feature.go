// Package feature implements feature generation for entity matching: the
// "Creating Feature Vectors" step of the PyMatcher how-to guide. Given two
// tables to match, it infers a type for each corresponding attribute pair
// (short string, medium string, long text, numeric, boolean) and
// instantiates an appropriate battery of similarity features, producing
// names like jaccard_3gram_name — exactly the auto-generated feature sets
// the paper describes storing in the global variable F.
//
// The generated Set is explicitly user-editable (Remove, Add): the paper
// calls out customizability — "we give users ways to delete features from
// F, and to declaratively define more features then add them to F" — as a
// core design principle.
package feature

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// PairFunc scores the similarity of two attribute values rendered as
// strings. Implementations must return values in [0, 1].
type PairFunc func(l, r string) float64

// Feature computes one similarity score for a tuple pair.
type Feature struct {
	// Name is the stable identifier, e.g. "jaccard_ws_name"; rule
	// predicates reference features by this name.
	Name string
	// LAttr and RAttr are the attribute names in the left and right
	// tables.
	LAttr, RAttr string
	// Fn scores the pair of rendered attribute values.
	Fn PairFunc
	// Tok and SetFn, when both non-nil, expose the feature's token-set
	// fast path: bulk extraction (Vectors) lower-cases, tokenizes, and
	// interns each attribute value once per row and scores pairs with
	// SetFn over the cached sets, instead of re-tokenizing both strings
	// through Fn for every pair × feature. SetFn must agree with Fn bit
	// for bit on every input (pinned by TestVectorsCacheEquivalence).
	Tok tokenize.Tokenizer
	// SetFn scores two sorted duplicate-free interned token sets.
	SetFn func(a, b []uint32) float64
}

// MissingPolicy controls the score of a pair in which either attribute
// value is null.
type MissingPolicy int

const (
	// MissingZero scores pairs with a missing side as 0 (the default:
	// treat as total dissimilarity).
	MissingZero MissingPolicy = iota
	// MissingNeutral scores them 0.5, keeping the matcher from reading
	// systematic missingness as evidence of non-match.
	MissingNeutral
)

// Set is an ordered collection of features over a fixed pair of tables.
type Set struct {
	Features []Feature
	Missing  MissingPolicy
}

// Names returns the feature names in order.
func (s *Set) Names() []string {
	out := make([]string, len(s.Features))
	for i, f := range s.Features {
		out[i] = f.Name
	}
	return out
}

// Len returns the number of features.
func (s *Set) Len() int { return len(s.Features) }

// Add appends a manually defined feature, rejecting duplicate names.
func (s *Set) Add(f Feature) error {
	if f.Name == "" {
		return fmt.Errorf("feature: empty name")
	}
	if f.Fn == nil {
		return fmt.Errorf("feature %q: nil function", f.Name)
	}
	for _, g := range s.Features {
		if g.Name == f.Name {
			return fmt.Errorf("feature %q already defined", f.Name)
		}
	}
	s.Features = append(s.Features, f)
	return nil
}

// Subset returns a new set containing only the named features, in the
// given order. Blocking-rule execution uses this to score candidates on
// just the features the rules reference, instead of the full battery.
func (s *Set) Subset(names ...string) (*Set, error) {
	out := &Set{Missing: s.Missing}
	for _, n := range names {
		found := false
		for _, f := range s.Features {
			if f.Name == n {
				if err := out.Add(f); err != nil {
					return nil, err
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("feature: subset: no feature %q", n)
		}
	}
	return out, nil
}

// Remove deletes the named feature; it reports whether it was present.
func (s *Set) Remove(name string) bool {
	for i, f := range s.Features {
		if f.Name == name {
			s.Features = append(s.Features[:i], s.Features[i+1:]...)
			return true
		}
	}
	return false
}

// Vector computes the feature vector for one tuple pair. lrow and rrow are
// rows of the left and right tables whose schemas the set was generated
// for.
func (s *Set) Vector(lt, rt *table.Table, lrow, rrow table.Row) []float64 {
	x := make([]float64, len(s.Features))
	for i, f := range s.Features {
		li := lt.Schema().Lookup(f.LAttr)
		ri := rt.Schema().Lookup(f.RAttr)
		if li < 0 || ri < 0 {
			x[i] = s.missingScore()
			continue
		}
		lv, rv := lrow[li], rrow[ri]
		if lv.IsNull() || rv.IsNull() {
			x[i] = s.missingScore()
			continue
		}
		x[i] = f.Fn(lv.AsString(), rv.AsString())
	}
	return x
}

func (s *Set) missingScore() float64 {
	if s.Missing == MissingNeutral {
		return 0.5
	}
	return 0
}

// AttrType classifies an attribute for feature selection.
type AttrType int

// The attribute classes AutoGenerate distinguishes.
const (
	TypeNumeric AttrType = iota
	TypeBoolean
	TypeShortString  // ~1 word (names, codes, ids)
	TypeMediumString // 2–8 words (titles, addresses)
	TypeLongText     // > 8 words (descriptions)
)

// String names the type.
func (t AttrType) String() string {
	switch t {
	case TypeNumeric:
		return "numeric"
	case TypeBoolean:
		return "boolean"
	case TypeShortString:
		return "short_string"
	case TypeMediumString:
		return "medium_string"
	case TypeLongText:
		return "long_text"
	default:
		return "unknown"
	}
}

// InferType classifies a column by its declared kind and observed token
// statistics across both tables.
func InferType(kind table.Kind, avgTokens float64) AttrType {
	switch kind {
	case table.KindInt, table.KindFloat:
		return TypeNumeric
	case table.KindBool:
		return TypeBoolean
	}
	switch {
	case avgTokens <= 1.5:
		return TypeShortString
	case avgTokens <= 8:
		return TypeMediumString
	default:
		return TypeLongText
	}
}

// avgTokenCount returns the mean whitespace-token count of the column over
// both tables.
func avgTokenCount(a, b *table.Table, attr string) float64 {
	total, n := 0, 0
	for _, t := range []*table.Table{a, b} {
		j := t.Schema().Lookup(attr)
		if j < 0 {
			continue
		}
		for i := 0; i < t.Len(); i++ {
			v := t.Row(i)[j]
			if v.IsNull() {
				continue
			}
			total += len(strings.Fields(v.AsString()))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// AutoGenerate builds a feature set for matching tables a and b. Attribute
// correspondences are taken by identical column name; the tables' key
// columns and any names in exclude are skipped. This mirrors
// py_entitymatching's get_features_for_matching.
func AutoGenerate(a, b *table.Table, exclude ...string) (*Set, error) {
	skip := map[string]bool{a.Key(): true, b.Key(): true}
	for _, e := range exclude {
		skip[e] = true
	}
	s := &Set{}
	matched := 0
	for _, col := range a.Schema().Columns() {
		if skip[col.Name] {
			continue
		}
		// KindOf doubles as the existence check: an error means b has no
		// such column.
		bKind, err := b.Schema().KindOf(col.Name)
		if err != nil {
			continue
		}
		kind := col.Kind
		if bKind != kind {
			// Disagreeing kinds: fall back to string features.
			kind = table.KindString
		}
		matched++
		at := InferType(kind, avgTokenCount(a, b, col.Name))
		for _, f := range featuresFor(at, col.Name) {
			if err := s.Add(f); err != nil {
				return nil, err
			}
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("feature: tables %q and %q share no non-key attributes", a.Name(), b.Name())
	}
	return s, nil
}

// featuresFor instantiates the battery of features appropriate to an
// attribute type.
func featuresFor(at AttrType, attr string) []Feature {
	mk := func(kind string, fn PairFunc) Feature {
		return Feature{Name: kind + "_" + attr, LAttr: attr, RAttr: attr, Fn: fn}
	}
	// mkSet builds a token-set feature carrying both the string path (Fn,
	// used by per-pair Vector calls) and the interned fast path (Tok +
	// SetFn, used by the Vectors extraction cache).
	mkSet := func(kind string, tok tokenize.Tokenizer, setFn func(a, b []uint32) float64, fn func(a, b []string) float64) Feature {
		f := mk(kind, tokenized(tok, fn))
		f.Tok, f.SetFn = tok, setFn
		return f
	}
	ws := tokenize.Whitespace{ReturnSet: true}
	g3 := tokenize.QGram{Q: 3, ReturnSet: true}
	switch at {
	case TypeNumeric:
		return []Feature{
			mk("exact", sim.ExactMatch),
			mk("rel_diff", RelDiff),
			mk("lev", sim.Levenshtein),
		}
	case TypeBoolean:
		return []Feature{mk("exact", sim.ExactMatch)}
	case TypeShortString:
		return []Feature{
			mk("exact", sim.ExactMatch),
			mk("lev", sim.Levenshtein),
			mk("jaro", sim.Jaro),
			mk("jaro_winkler", sim.JaroWinkler),
			mkSet("jaccard_3gram", g3, sim.JaccardU32, sim.Jaccard),
			mk("soundex", sim.SoundexSim),
		}
	case TypeMediumString:
		return []Feature{
			mk("exact", sim.ExactMatch),
			mk("lev", sim.Levenshtein),
			mkSet("jaccard_ws", ws, sim.JaccardU32, sim.Jaccard),
			mkSet("jaccard_3gram", g3, sim.JaccardU32, sim.Jaccard),
			mkSet("cosine_ws", ws, sim.CosineSetU32, sim.CosineSet),
			mkSet("overlap_coeff_ws", ws, sim.OverlapCoefficientU32, sim.OverlapCoefficient),
			mk("monge_elkan_jw", mongeElkanJW),
		}
	default: // TypeLongText
		return []Feature{
			mkSet("jaccard_ws", ws, sim.JaccardU32, sim.Jaccard),
			mkSet("cosine_ws", ws, sim.CosineSetU32, sim.CosineSet),
			mkSet("dice_ws", ws, sim.DiceU32, sim.Dice),
			mkSet("overlap_coeff_ws", ws, sim.OverlapCoefficientU32, sim.OverlapCoefficient),
		}
	}
}

// tokenized lifts a token-set similarity into a PairFunc via a tokenizer.
func tokenized(tok tokenize.Tokenizer, f func(a, b []string) float64) PairFunc {
	return func(l, r string) float64 {
		return f(tok.Tokenize(strings.ToLower(l)), tok.Tokenize(strings.ToLower(r)))
	}
}

func mongeElkanJW(l, r string) float64 {
	ws := tokenize.Whitespace{}
	return sim.MongeElkanSym(ws.Tokenize(strings.ToLower(l)), ws.Tokenize(strings.ToLower(r)), sim.JaroWinkler)
}

// RelDiff scores two numeric strings by 1 - |a-b| / max(|a|,|b|), clamped
// to [0, 1]; non-numeric inputs fall back to exact match.
func RelDiff(l, r string) float64 {
	lv, lok := table.String(l).AsFloat()
	rv, rok := table.String(r).AsFloat()
	if !lok || !rok {
		return sim.ExactMatch(l, r)
	}
	if lv == rv {
		return 1
	}
	den := math.Max(math.Abs(lv), math.Abs(rv))
	if den == 0 {
		return 1
	}
	d := 1 - math.Abs(lv-rv)/den
	if d < 0 {
		return 0
	}
	return d
}
