package feature

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/table"
)

func twoTables(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	sch := table.MustSchema(
		table.Column{Name: "id", Kind: table.KindString},
		table.Column{Name: "name", Kind: table.KindString},
		table.Column{Name: "city", Kind: table.KindString},
		table.Column{Name: "age", Kind: table.KindInt},
	)
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.String("Dave Smith"), table.String("Madison"), table.Int(40))
	a.MustAppend(table.String("a2"), table.String("Joe Wilson"), table.String("San Jose"), table.Int(30))
	b := table.New("B", sch)
	b.MustAppend(table.String("b1"), table.String("David D. Smith"), table.String("Madison"), table.Int(41))
	b.MustAppend(table.String("b2"), table.String("Jo Wilson"), table.String("San Jose"), table.Int(30))
	if err := a.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	if err := b.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestAutoGenerate(t *testing.T) {
	a, b := twoTables(t)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Fatal("no features generated")
	}
	// The key column must not appear in any feature.
	for _, f := range s.Features {
		if f.LAttr == "id" {
			t.Errorf("key attribute leaked into feature %q", f.Name)
		}
	}
	// Numeric column gets numeric features.
	found := false
	for _, n := range s.Names() {
		if n == "rel_diff_age" {
			found = true
		}
	}
	if !found {
		t.Errorf("rel_diff_age missing from %v", s.Names())
	}
}

func TestAutoGenerateExclude(t *testing.T) {
	a, b := twoTables(t)
	s, err := AutoGenerate(a, b, "age", "city")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Features {
		if f.LAttr == "age" || f.LAttr == "city" {
			t.Errorf("excluded attribute in feature %q", f.Name)
		}
	}
}

func TestAutoGenerateNoSharedAttrs(t *testing.T) {
	a := table.New("A", table.StringSchema("id", "x"))
	b := table.New("B", table.StringSchema("id", "y"))
	a.MustAppend(table.String("1"), table.String("v"))
	b.MustAppend(table.String("1"), table.String("v"))
	a.MustSetKey("id")
	b.MustSetKey("id")
	if _, err := AutoGenerate(a, b); err == nil {
		t.Fatal("want no-shared-attributes error")
	}
}

func TestVectorScoresSensibly(t *testing.T) {
	a, b := twoTables(t)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// (a1, b1) are near-matches; (a1, b2) are not.
	match := s.Vector(a, b, a.Row(0), b.Row(0))
	nonmatch := s.Vector(a, b, a.Row(0), b.Row(1))
	var sumM, sumN float64
	for i := range match {
		sumM += match[i]
		sumN += nonmatch[i]
	}
	if sumM <= sumN {
		t.Errorf("match pair scored %.3f, non-match %.3f; expected match higher", sumM, sumN)
	}
	for i, v := range match {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("feature %s = %v out of range", s.Names()[i], v)
		}
	}
}

func TestMissingPolicies(t *testing.T) {
	sch := table.MustSchema(
		table.Column{Name: "id", Kind: table.KindString},
		table.Column{Name: "name", Kind: table.KindString},
	)
	a := table.New("A", sch)
	a.MustAppend(table.String("a1"), table.Null(table.KindString))
	b := table.New("B", sch)
	b.MustAppend(table.String("b1"), table.String("x"))
	a.MustSetKey("id")
	b.MustSetKey("id")
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	v := s.Vector(a, b, a.Row(0), b.Row(0))
	for _, x := range v {
		if x != 0 {
			t.Errorf("MissingZero gave %v", x)
		}
	}
	s.Missing = MissingNeutral
	v = s.Vector(a, b, a.Row(0), b.Row(0))
	for _, x := range v {
		if x != 0.5 {
			t.Errorf("MissingNeutral gave %v", x)
		}
	}
}

func TestAddRemove(t *testing.T) {
	s := &Set{}
	f := Feature{Name: "custom", LAttr: "a", RAttr: "b", Fn: sim.ExactMatch}
	if err := s.Add(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(f); err == nil {
		t.Error("want duplicate-name error")
	}
	if err := s.Add(Feature{Name: "", Fn: sim.ExactMatch}); err == nil {
		t.Error("want empty-name error")
	}
	if err := s.Add(Feature{Name: "nofn"}); err == nil {
		t.Error("want nil-fn error")
	}
	if !s.Remove("custom") {
		t.Error("remove failed")
	}
	if s.Remove("custom") {
		t.Error("double remove should report false")
	}
}

func TestInferType(t *testing.T) {
	cases := []struct {
		kind table.Kind
		avg  float64
		want AttrType
	}{
		{table.KindInt, 1, TypeNumeric},
		{table.KindFloat, 1, TypeNumeric},
		{table.KindBool, 1, TypeBoolean},
		{table.KindString, 1.0, TypeShortString},
		{table.KindString, 4, TypeMediumString},
		{table.KindString, 20, TypeLongText},
	}
	for _, c := range cases {
		if got := InferType(c.kind, c.avg); got != c.want {
			t.Errorf("InferType(%v, %v) = %v, want %v", c.kind, c.avg, got, c.want)
		}
	}
	for _, at := range []AttrType{TypeNumeric, TypeBoolean, TypeShortString, TypeMediumString, TypeLongText} {
		if at.String() == "unknown" {
			t.Errorf("type %d renders unknown", at)
		}
	}
}

func TestRelDiff(t *testing.T) {
	if RelDiff("10", "10") != 1 {
		t.Error("equal numbers = 1")
	}
	if got := RelDiff("10", "5"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("rel_diff(10,5) = %v", got)
	}
	if RelDiff("abc", "abc") != 1 {
		t.Error("non-numeric equal should fall back to exact = 1")
	}
	if RelDiff("abc", "xyz") != 0 {
		t.Error("non-numeric unequal = 0")
	}
	if RelDiff("0", "0") != 1 {
		t.Error("both zero = 1")
	}
	if got := RelDiff("-5", "5"); got != 0 {
		t.Errorf("rel_diff(-5,5) = %v, want clamped 0", got)
	}
}

func TestVectorsFromPairTable(t *testing.T) {
	a, b := twoTables(t)
	cat := table.NewCatalog()
	pairs, err := table.NewPairTable("C", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	table.AppendPair(pairs, "a1", "b1")
	table.AppendPair(pairs, "a1", "b2")
	table.AppendPair(pairs, "a2", "b2")
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Vectors(s, pairs, cat, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 3 {
		t.Fatalf("vectors = %d", len(x))
	}
	for _, row := range x {
		if len(row) != s.Len() {
			t.Fatalf("row width = %d, want %d", len(row), s.Len())
		}
	}
	// Parallel extraction agrees with serial.
	x1, err := Vectors(s, pairs, cat, ExtractOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			if x[i][j] != x1[i][j] {
				t.Fatal("parallel and serial extraction disagree")
			}
		}
	}
}

func TestVectorsUnregisteredPair(t *testing.T) {
	a, b := twoTables(t)
	cat := table.NewCatalog()
	orphan := table.New("orphan", table.DefaultPairSchema())
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Vectors(s, orphan, cat, ExtractOptions{}); err == nil {
		t.Fatal("want unregistered-pair error")
	}
}

func TestVectorsValidatesFK(t *testing.T) {
	a, b := twoTables(t)
	cat := table.NewCatalog()
	pairs, err := table.NewPairTable("C", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	table.AppendPair(pairs, "a1", "ghost") // dangling FK
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Vectors(s, pairs, cat, ExtractOptions{}); err == nil {
		t.Fatal("want FK-violation error (self-containment check)")
	}
}

func TestVectorForIDs(t *testing.T) {
	a, b := twoTables(t)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VectorForIDs(s, a, b, "a1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != s.Len() {
		t.Fatalf("width = %d", len(v))
	}
	if _, err := VectorForIDs(s, a, b, "nope", "b1"); err == nil {
		t.Error("want missing-left-id error")
	}
	if _, err := VectorForIDs(s, a, b, "a1", "nope"); err == nil {
		t.Error("want missing-right-id error")
	}
}

// Property: every feature of an auto-generated set returns values in [0,1]
// on arbitrary strings.
func TestFeatureRangeProperty(t *testing.T) {
	a, b := twoTables(t)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f := func(l, r string) bool {
		for _, feat := range s.Features {
			v := feat.Fn(l, r)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestVectorsBitIdenticalAcrossWorkers pins the DESIGN.md §5 contract for
// pooled feature extraction: every Workers setting reproduces the serial
// matrix bit for bit.
func TestVectorsBitIdenticalAcrossWorkers(t *testing.T) {
	a, b := twoTables(t)
	cat := table.NewCatalog()
	pairs, err := table.NewPairTable("C", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	table.AppendPair(pairs, "a1", "b1")
	table.AppendPair(pairs, "a1", "b2")
	table.AppendPair(pairs, "a2", "b1")
	table.AppendPair(pairs, "a2", "b2")
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Vectors(s, pairs, cat, ExtractOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 16} {
		par, err := Vectors(s, pairs, cat, ExtractOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d: extraction differs from serial", workers)
		}
	}
}
