package feature

import (
	"reflect"
	"testing"

	"repro/internal/intern"
	"repro/internal/table"
)

// rowAttrs renders a table row as the attribute map the serving path
// consumes: nulls become absent keys.
func rowAttrs(t *table.Table, row table.Row) map[string]string {
	out := make(map[string]string)
	for j, col := range t.Schema().Columns() {
		if row[j].IsNull() {
			continue
		}
		out[col.Name] = row[j].AsString()
	}
	return out
}

// TestVectorWithMatchesVector pins the serving-side extraction contract:
// VectorWith over attribute maps plus RecordSets-cached interned sets must
// reproduce Set.Vector over the equivalent table rows bit for bit — across
// set-path features, string fallbacks, nulls, and both missing policies.
// The query side interns ephemerally (never-seen tokens included), the
// corpus side through the shared dictionary, exactly as serve.MatchOne
// does.
func TestVectorWithMatchesVector(t *testing.T) {
	a, b, _, _ := cacheTables(t, 40, 53)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []MissingPolicy{MissingZero, MissingNeutral} {
		s.Missing = policy
		d := intern.NewDict()
		// Corpus side: every right row's sets through the shared dict.
		rsets := make([][][]uint32, b.Len())
		rattrs := make([]map[string]string, b.Len())
		for ri := 0; ri < b.Len(); ri++ {
			rattrs[ri] = rowAttrs(b, b.Row(ri))
			rsets[ri] = s.RecordSets(rattrs[ri], true, d.SortedSet)
		}
		for li := 0; li < a.Len(); li++ {
			lattrs := rowAttrs(a, a.Row(li))
			lsets := s.RecordSets(lattrs, false, d.SortedSetEphemeral)
			for ri := 0; ri < b.Len(); ri += 7 {
				got := s.VectorWith(lattrs, rattrs[ri], lsets, rsets[ri])
				want := s.Vector(a, b, a.Row(li), b.Row(ri))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("policy %d pair (%d,%d): VectorWith %v != Vector %v", policy, li, ri, got, want)
				}
			}
		}
	}
}

// TestVectorWithEphemeralTokens: a query carrying tokens the dictionary
// has never seen must still score set-path features exactly — ephemeral
// IDs are disjoint from interned IDs, so Jaccard/cosine denominators stay
// right. The string path (nil caches) is the ground truth.
func TestVectorWithEphemeralTokens(t *testing.T) {
	a, b, _, _ := cacheTables(t, 20, 57)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d := intern.NewDict()
	for ri := 0; ri < b.Len(); ri++ {
		s.RecordSets(rowAttrs(b, b.Row(ri)), true, d.SortedSet)
	}
	lattrs := map[string]string{
		"name": "acme xylophone quark quark",
		"desc": "widget store zeppelin umlaut acme zeppelin north quark",
		"age":  "30",
	}
	lsets := s.RecordSets(lattrs, false, d.SortedSetEphemeral)
	for ri := 0; ri < b.Len(); ri++ {
		rattrs := rowAttrs(b, b.Row(ri))
		rsets := s.RecordSets(rattrs, true, d.SortedSet)
		got := s.VectorWith(lattrs, rattrs, lsets, rsets)
		want := s.VectorWith(lattrs, rattrs, nil, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("corpus row %d: ephemeral-set vector %v != string-path vector %v", ri, got, want)
		}
	}
}

// TestVectorWithNilSetsFallsBack: passing nil set caches forces every
// feature through the string path and still agrees with Vector.
func TestVectorWithNilSetsFallsBack(t *testing.T) {
	a, b, _, _ := cacheTables(t, 10, 59)
	s, err := AutoGenerate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for li := 0; li < a.Len(); li++ {
		got := s.VectorWith(rowAttrs(a, a.Row(li)), rowAttrs(b, b.Row(li)), nil, nil)
		want := s.Vector(a, b, a.Row(li), b.Row(li))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d: nil-cache VectorWith %v != Vector %v", li, got, want)
		}
	}
}
