package feature

import (
	"fmt"
	"strings"

	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// ExtractOptions tunes feature-vector extraction.
type ExtractOptions struct {
	// Workers parallelizes extraction across pairs; 0 means GOMAXPROCS
	// (parallel.Resolve).
	Workers int
	// Metrics receives extraction timings and vector counts
	// (obs.FeatureExtractSeconds, obs.FeatureVectors); nil means off.
	Metrics obs.Recorder
	// NoTokenCache disables the per-row tokenization cache, forcing every
	// feature through its string PairFunc as if no token-set fast path
	// existed. The cached and uncached paths produce bit-identical
	// vectors; the flag exists for the equivalence tests and as the
	// string-path baseline of benchem -exp tokens.
	NoTokenCache bool
}

// tokenCache holds each token-set feature's attribute columns tokenized and
// interned once per row, turning the per-pair-per-feature retokenization of
// the string path into an O(rows × columns) preprocessing pass. It also
// hoists the per-pair schema lookups every feature needs. Built once before
// the (possibly parallel) pair scan, then shared read-only.
type tokenCache struct {
	// lsets[k]/rsets[k] is the cached column for feature k (nil when the
	// feature has no token-set path or its attribute is missing); row i
	// holds the sorted interned set of that row's value, nil marking null.
	lsets, rsets [][][]uint32
	// lcol[k]/rcol[k] is feature k's column index in each schema (-1 when
	// absent), precomputed for the string-path features too.
	lcol, rcol []int
}

// cacheColKey identifies one tokenized column build: distinct features
// sharing an attribute and tokenizer reuse the same column.
type cacheColKey struct {
	attr string
	tok  string
}

// buildTokenCache tokenizes and interns every column some token-set feature
// needs, through one dictionary shared by both tables. Returns nil when no
// feature carries a token-set path.
func buildTokenCache(s *Set, lt, rt *table.Table) *tokenCache {
	c := &tokenCache{
		lsets: make([][][]uint32, len(s.Features)),
		rsets: make([][][]uint32, len(s.Features)),
		lcol:  make([]int, len(s.Features)),
		rcol:  make([]int, len(s.Features)),
	}
	d := intern.NewDict()
	lBuilt := make(map[cacheColKey][][]uint32)
	rBuilt := make(map[cacheColKey][][]uint32)
	any := false
	for k, f := range s.Features {
		c.lcol[k] = lt.Schema().Lookup(f.LAttr)
		c.rcol[k] = rt.Schema().Lookup(f.RAttr)
		if f.SetFn == nil || f.Tok == nil || c.lcol[k] < 0 || c.rcol[k] < 0 {
			continue
		}
		any = true
		lk := cacheColKey{f.LAttr, f.Tok.Name()}
		if _, ok := lBuilt[lk]; !ok {
			lBuilt[lk] = internColumn(d, lt, c.lcol[k], f.Tok)
		}
		c.lsets[k] = lBuilt[lk]
		rk := cacheColKey{f.RAttr, f.Tok.Name()}
		if _, ok := rBuilt[rk]; !ok {
			rBuilt[rk] = internColumn(d, rt, c.rcol[k], f.Tok)
		}
		c.rsets[k] = rBuilt[rk]
	}
	if !any {
		return nil
	}
	return c
}

// internColumn tokenizes one attribute of every row into sorted interned
// sets, mirroring the string path's tokenized() adapter (lower-case first).
// Null values stay nil; non-null values always get a non-nil set.
func internColumn(d *intern.Dict, t *table.Table, col int, tok tokenize.Tokenizer) [][]uint32 {
	out := make([][]uint32, t.Len())
	for i := 0; i < t.Len(); i++ {
		v := t.Row(i)[col]
		if v.IsNull() {
			continue
		}
		out[i] = d.SortedSet(tok.Tokenize(strings.ToLower(v.AsString())))
	}
	return out
}

// vector computes one pair's feature vector through the cache, reproducing
// Set.Vector bit for bit: cached features score interned sets, everything
// else falls through to the string PairFunc.
func (c *tokenCache) vector(s *Set, lrow, rrow table.Row, li, ri int) []float64 {
	x := make([]float64, len(s.Features))
	for k, f := range s.Features {
		lj, rj := c.lcol[k], c.rcol[k]
		if lj < 0 || rj < 0 {
			x[k] = s.missingScore()
			continue
		}
		if c.lsets[k] != nil {
			ls, rs := c.lsets[k][li], c.rsets[k][ri]
			if ls == nil || rs == nil {
				x[k] = s.missingScore()
				continue
			}
			x[k] = f.SetFn(ls, rs)
			continue
		}
		lv, rv := lrow[lj], rrow[rj]
		if lv.IsNull() || rv.IsNull() {
			x[k] = s.missingScore()
			continue
		}
		x[k] = f.Fn(lv.AsString(), rv.AsString())
	}
	return x
}

// RecordSets computes, for every feature in s carrying a token-set fast
// path, the sorted interned set of one record's relevant attribute — the
// per-record half of serving-side feature extraction (package serve caches
// these for every resident record and computes them once per query).
// attrs maps attribute name to rendered value; an absent key is a null.
// right selects the RAttr column (corpus side) instead of LAttr (query
// side). interner turns a lower-cased token slice into a sorted
// duplicate-free ID set and must never return nil (intern.Dict.SortedSet
// and SortedSetEphemeral both qualify); it runs once per distinct
// (attribute, tokenizer) column, exactly like the bulk cache. The result
// is indexed by feature; nil entries mark features without a set path or
// with a null attribute.
func (s *Set) RecordSets(attrs map[string]string, right bool, interner func(toks []string) []uint32) [][]uint32 {
	out := make([][]uint32, len(s.Features))
	built := make(map[cacheColKey][]uint32)
	for k, f := range s.Features {
		if f.SetFn == nil || f.Tok == nil {
			continue
		}
		attr := f.LAttr
		if right {
			attr = f.RAttr
		}
		v, ok := attrs[attr]
		if !ok {
			continue
		}
		ck := cacheColKey{attr, f.Tok.Name()}
		set, seen := built[ck]
		if !seen {
			set = interner(f.Tok.Tokenize(strings.ToLower(v)))
			built[ck] = set
		}
		out[k] = set
	}
	return out
}

// VectorWith computes one pair's feature vector from attribute maps plus
// per-record sets previously computed by RecordSets, reproducing Vector
// bit for bit on equivalent rows (pinned by TestVectorWithMatchesVector):
// features with both cached sets score SetFn over them, everything else
// falls back to the string PairFunc, and a null on either side scores the
// missing policy. Either sets argument may be nil to force the string
// path for every feature.
func (s *Set) VectorWith(lattrs, rattrs map[string]string, lsets, rsets [][]uint32) []float64 {
	x := make([]float64, len(s.Features))
	s.VectorWithInto(lattrs, rattrs, lsets, rsets, x)
	return x
}

// VectorWithInto is VectorWith writing into x, which must have
// len(s.Features) entries. It exists for callers that featurize many
// candidate pairs per query through reusable scratch (the serving corpus
// builds its per-query feature matrix this way); the values written are
// bit-identical to VectorWith's.
func (s *Set) VectorWithInto(lattrs, rattrs map[string]string, lsets, rsets [][]uint32, x []float64) {
	for k, f := range s.Features {
		lv, lok := lattrs[f.LAttr]
		rv, rok := rattrs[f.RAttr]
		if !lok || !rok {
			x[k] = s.missingScore()
			continue
		}
		if lsets != nil && rsets != nil && lsets[k] != nil && rsets[k] != nil {
			x[k] = f.SetFn(lsets[k], rsets[k])
			continue
		}
		x[k] = f.Fn(lv, rv)
	}
}

// Vectors computes the feature matrix for every pair of a candidate-set
// table. The pair table must be registered in cat (so its base tables and
// id columns are known); per the paper's self-containment principle the FK
// metadata is re-validated before use.
func Vectors(s *Set, pairs *table.Table, cat *table.Catalog, opts ExtractOptions) ([][]float64, error) {
	rec := obs.Or(opts.Metrics)
	defer obs.StartTimer(rec, obs.FeatureExtractSeconds)()
	meta, ok := cat.PairMeta(pairs)
	if !ok {
		return nil, fmt.Errorf("feature: pair table %q not registered in catalog", pairs.Name())
	}
	if err := cat.ValidatePair(pairs); err != nil {
		return nil, fmt.Errorf("feature: %w", err)
	}
	lidx, err := meta.LTable.KeyIndex()
	if err != nil {
		return nil, err
	}
	ridx, err := meta.RTable.KeyIndex()
	if err != nil {
		return nil, err
	}

	var cache *tokenCache
	if !opts.NoTokenCache {
		cache = buildTokenCache(s, meta.LTable, meta.RTable)
	}

	n := pairs.Len()
	out := make([][]float64, n)
	// Each pair's vector lands in its own index slot, so extraction at any
	// Workers setting is bit-identical to serial.
	if err := parallel.ForEach(opts.Workers, n, func(i int) error {
		lid := pairs.Get(i, meta.LID).AsString()
		rid := pairs.Get(i, meta.RID).AsString()
		li, ri := lidx[lid], ridx[rid]
		lrow := meta.LTable.Row(li)
		rrow := meta.RTable.Row(ri)
		if cache != nil {
			out[i] = cache.vector(s, lrow, rrow, li, ri)
		} else {
			out[i] = s.Vector(meta.LTable, meta.RTable, lrow, rrow)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rec.Count(obs.FeatureVectors, float64(n))
	return out, nil
}

// VectorForIDs computes the feature vector for a single (lid, rid) pair
// given the base tables. It is the convenience path interactive debuggers
// use.
func VectorForIDs(s *Set, lt, rt *table.Table, lid, rid string) ([]float64, error) {
	lidx, err := lt.KeyIndex()
	if err != nil {
		return nil, err
	}
	ridx, err := rt.KeyIndex()
	if err != nil {
		return nil, err
	}
	li, ok := lidx[lid]
	if !ok {
		return nil, fmt.Errorf("feature: id %q not in table %q", lid, lt.Name())
	}
	ri, ok := ridx[rid]
	if !ok {
		return nil, fmt.Errorf("feature: id %q not in table %q", rid, rt.Name())
	}
	return s.Vector(lt, rt, lt.Row(li), rt.Row(ri)), nil
}
