package feature

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/table"
)

// ExtractOptions tunes feature-vector extraction.
type ExtractOptions struct {
	// Workers parallelizes extraction across pairs; 0 means GOMAXPROCS
	// (parallel.Resolve).
	Workers int
	// Metrics receives extraction timings and vector counts
	// (obs.FeatureExtractSeconds, obs.FeatureVectors); nil means off.
	Metrics obs.Recorder
}

// Vectors computes the feature matrix for every pair of a candidate-set
// table. The pair table must be registered in cat (so its base tables and
// id columns are known); per the paper's self-containment principle the FK
// metadata is re-validated before use.
func Vectors(s *Set, pairs *table.Table, cat *table.Catalog, opts ExtractOptions) ([][]float64, error) {
	rec := obs.Or(opts.Metrics)
	defer obs.StartTimer(rec, obs.FeatureExtractSeconds)()
	meta, ok := cat.PairMeta(pairs)
	if !ok {
		return nil, fmt.Errorf("feature: pair table %q not registered in catalog", pairs.Name())
	}
	if err := cat.ValidatePair(pairs); err != nil {
		return nil, fmt.Errorf("feature: %w", err)
	}
	lidx, err := meta.LTable.KeyIndex()
	if err != nil {
		return nil, err
	}
	ridx, err := meta.RTable.KeyIndex()
	if err != nil {
		return nil, err
	}

	n := pairs.Len()
	out := make([][]float64, n)
	// Each pair's vector lands in its own index slot, so extraction at any
	// Workers setting is bit-identical to serial.
	if err := parallel.ForEach(opts.Workers, n, func(i int) error {
		lid := pairs.Get(i, meta.LID).AsString()
		rid := pairs.Get(i, meta.RID).AsString()
		lrow := meta.LTable.Row(lidx[lid])
		rrow := meta.RTable.Row(ridx[rid])
		out[i] = s.Vector(meta.LTable, meta.RTable, lrow, rrow)
		return nil
	}); err != nil {
		return nil, err
	}
	rec.Count(obs.FeatureVectors, float64(n))
	return out, nil
}

// VectorForIDs computes the feature vector for a single (lid, rid) pair
// given the base tables. It is the convenience path interactive debuggers
// use.
func VectorForIDs(s *Set, lt, rt *table.Table, lid, rid string) ([]float64, error) {
	lidx, err := lt.KeyIndex()
	if err != nil {
		return nil, err
	}
	ridx, err := rt.KeyIndex()
	if err != nil {
		return nil, err
	}
	li, ok := lidx[lid]
	if !ok {
		return nil, fmt.Errorf("feature: id %q not in table %q", lid, lt.Name())
	}
	ri, ok := ridx[rid]
	if !ok {
		return nil, fmt.Errorf("feature: id %q not in table %q", rid, rt.Name())
	}
	return s.Vector(lt, rt, lt.Row(li), rt.Row(ri)), nil
}
