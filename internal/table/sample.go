package table

import (
	"fmt"
	"math/rand"
)

// Sample returns a new table with n rows drawn uniformly without
// replacement using rng. If n >= Len the whole table is returned (copied).
func (t *Table) Sample(n int, rng *rand.Rand) *Table {
	if n >= t.Len() {
		return t.Clone()
	}
	perm := rng.Perm(t.Len())[:n]
	return t.Select(perm)
}

// SampleWithReplacement returns a new table with n rows drawn uniformly
// with replacement — used for bootstrap resampling by the random forest.
func (t *Table) SampleWithReplacement(n int, rng *rand.Rand) *Table {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = rng.Intn(t.Len())
	}
	return t.Select(idxs)
}

// Shuffle returns a new table with the rows in random order.
func (t *Table) Shuffle(rng *rand.Rand) *Table {
	return t.Select(rng.Perm(t.Len()))
}

// Split partitions the table's rows into two new tables, the first holding
// a fraction frac (rounded down) of rows chosen at random. It is the
// train/test split used in matcher evaluation.
func (t *Table) Split(frac float64, rng *rand.Rand) (*Table, *Table, error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("split: fraction %v out of [0,1]", frac)
	}
	perm := rng.Perm(t.Len())
	n := int(frac * float64(t.Len()))
	return t.Select(perm[:n]), t.Select(perm[n:]), nil
}

// StratifiedSplit partitions rows by the boolean column labelCol so that
// both output tables preserve the positive/negative ratio. It is used when
// labeled match data is heavily skewed toward non-matches.
func (t *Table) StratifiedSplit(labelCol string, frac float64, rng *rand.Rand) (*Table, *Table, error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("stratified split: fraction %v out of [0,1]", frac)
	}
	j := t.schema.Lookup(labelCol)
	if j < 0 {
		return nil, nil, fmt.Errorf("stratified split: no column %q", labelCol)
	}
	var pos, neg []int
	for i, r := range t.rows {
		truthy := false
		if !r[j].IsNull() {
			switch r[j].Kind {
			case KindBool:
				truthy = r[j].Bool
			default:
				f, _ := r[j].AsFloat()
				truthy = f > 0.5
			}
		}
		if truthy {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(a, b int) { pos[a], pos[b] = pos[b], pos[a] })
	rng.Shuffle(len(neg), func(a, b int) { neg[a], neg[b] = neg[b], neg[a] })
	np, nn := int(frac*float64(len(pos))), int(frac*float64(len(neg)))
	first := append(append([]int(nil), pos[:np]...), neg[:nn]...)
	second := append(append([]int(nil), pos[np:]...), neg[nn:]...)
	rng.Shuffle(len(first), func(a, b int) { first[a], first[b] = first[b], first[a] })
	rng.Shuffle(len(second), func(a, b int) { second[a], second[b] = second[b], second[a] })
	return t.Select(first), t.Select(second), nil
}
