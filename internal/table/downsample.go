package table

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"unicode"
)

// DownSample implements the "intelligent down sampler" of the PyMatcher
// guide (Figure 2 and Table 3, column D). Naively sampling both tables
// independently tends to destroy nearly all matching pairs, leaving nothing
// to learn from. Instead we:
//
//  1. sample sizeB tuples from B,
//  2. build an inverted index from word tokens of every tuple of A
//     (concatenating all string attributes),
//  3. for each sampled B-tuple, probe the index and keep the A-tuples that
//     share the most tokens,
//  4. top up with random A-tuples until sizeA is reached.
//
// The result is a pair of small tables A', B' that still contain plausible
// matches, on which blockers and matchers can be tuned quickly.
func DownSample(a, b *Table, sizeA, sizeB int, rng *rand.Rand) (*Table, *Table, error) {
	if a.Len() == 0 || b.Len() == 0 {
		return nil, nil, fmt.Errorf("downsample: empty input table")
	}
	if sizeB >= b.Len() && sizeA >= a.Len() {
		return a.Clone(), b.Clone(), nil
	}
	if sizeA <= 0 || sizeB <= 0 {
		return nil, nil, fmt.Errorf("downsample: sizes must be positive (got %d, %d)", sizeA, sizeB)
	}

	bSample := b.Sample(sizeB, rng)

	// Inverted index: token -> list of A row indices.
	inv := make(map[string][]int)
	for i := 0; i < a.Len(); i++ {
		for tok := range rowTokens(a, i) {
			inv[tok] = append(inv[tok], i)
		}
	}

	// Probe with each sampled B tuple; count token overlaps per A row and
	// rank candidates per tuple.
	const probesPerTuple = 5
	ranked := make([][]int, bSample.Len())
	for i := 0; i < bSample.Len(); i++ {
		scores := make(map[int]int)
		for tok := range rowTokens(bSample, i) {
			post := inv[tok]
			// Very frequent tokens are stop-word-like; skip huge postings
			// to keep probing cheap and discriminative.
			if len(post) > a.Len()/10+50 {
				continue
			}
			for _, ai := range post {
				scores[ai]++
			}
		}
		for k := 0; k < probesPerTuple; k++ {
			best, bestScore := -1, 0
			for ai, s := range scores {
				if s > bestScore || (s == bestScore && best >= 0 && ai < best) {
					best, bestScore = ai, s
				}
			}
			if best < 0 {
				break
			}
			ranked[i] = append(ranked[i], best)
			delete(scores, best)
		}
	}

	// Take candidates round-robin so every B tuple contributes its best
	// candidate (almost surely the true match) before any tuple gets a
	// second one.
	chosen := make(map[int]bool)
	for k := 0; k < probesPerTuple && len(chosen) < sizeA; k++ {
		for i := range ranked {
			if k < len(ranked[i]) && !chosen[ranked[i][k]] {
				chosen[ranked[i][k]] = true
				if len(chosen) >= sizeA {
					break
				}
			}
		}
	}

	// Top up with random rows of A.
	if len(chosen) < sizeA {
		for _, i := range rng.Perm(a.Len()) {
			if !chosen[i] {
				chosen[i] = true
				if len(chosen) >= sizeA {
					break
				}
			}
		}
	}
	idxs := make([]int, 0, len(chosen))
	for i := range chosen {
		idxs = append(idxs, i)
	}
	// chosen is a map: without the sort the sampled rows would come out
	// in a different order every run.
	sort.Ints(idxs)
	aSample := a.Select(idxs)
	aSample.SetName(a.Name() + "_sample")
	bSample.SetName(b.Name() + "_sample")
	return aSample, bSample, nil
}

// rowTokens returns the set of lower-cased word tokens across all string
// cells of row i, excluding the key column (ids should not drive overlap).
func rowTokens(t *Table, i int) map[string]bool {
	toks := make(map[string]bool)
	r := t.Row(i)
	for j := 0; j < t.Schema().Len(); j++ {
		col := t.Schema().Col(j)
		if col.Name == t.Key() {
			continue
		}
		if r[j].IsNull() {
			continue
		}
		s := strings.ToLower(r[j].AsString())
		start := -1
		for k, c := range s {
			if unicode.IsLetter(c) || unicode.IsDigit(c) {
				if start < 0 {
					start = k
				}
			} else if start >= 0 {
				toks[s[start:k]] = true
				start = -1
			}
		}
		if start >= 0 {
			toks[s[start:]] = true
		}
	}
	return toks
}
