package table

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics on arbitrary bytes, and
// that any table it accepts survives a WriteCSV → ReadCSV round trip with
// the same shape (row count, column count, column names).
func FuzzReadCSV(f *testing.F) {
	f.Add("id,name,price\n1,widget,9.99\n2,gadget,19.5\n")
	f.Add("id,flag\n1,true\n2,false\n")
	f.Add("a\n\n")
	f.Add("a,b\n\"x,y\",2\n")
	f.Add("a,b\n1\n")
	f.Add("")
	f.Add("\xff\xfe")
	f.Add("a,a\n1,2\n")
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV(strings.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of accepted table: %v", err)
		}
		again, err := ReadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("re-read of written table: %v\ncsv:\n%s", err, buf.String())
		}
		if again.Len() != tab.Len() {
			t.Fatalf("round trip changed row count: %d != %d", again.Len(), tab.Len())
		}
		if got, want := again.Schema().Len(), tab.Schema().Len(); got != want {
			t.Fatalf("round trip changed column count: %d != %d", got, want)
		}
		for j, name := range tab.Schema().Names() {
			if got := again.Schema().Names()[j]; got != name {
				t.Fatalf("round trip changed column %d name: %q != %q", j, got, name)
			}
		}
	})
}
