package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadCSV reads a table from CSV with a header row, inferring column kinds
// from the data (int, then float, then bool, falling back to string). The
// table name is set to name.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("read csv %q: empty input (no header)", name)
	}
	header := records[0]
	body := records[1:]
	for i, rec := range body {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("read csv %q: row %d has %d fields, header has %d", name, i+1, len(rec), len(header))
		}
	}
	kinds := make([]Kind, len(header))
	for j := range header {
		kinds[j] = inferKind(body, j)
	}
	cols := make([]Column, len(header))
	for j, h := range header {
		cols[j] = Column{Name: strings.TrimSpace(h), Kind: kinds[j]}
	}
	sch, err := NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("read csv %q: %w", name, err)
	}
	t := New(name, sch)
	for i, rec := range body {
		if err := t.AppendStrings(rec...); err != nil {
			return nil, fmt.Errorf("read csv %q row %d: %w", name, i+1, err)
		}
	}
	return t, nil
}

// ReadCSVFile reads a table from the named CSV file; the table name is the
// file path.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, path)
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, t.schema.Len())
	for _, r := range t.rows {
		for j, v := range r {
			rec[j] = v.AsString()
		}
		// A lone empty field would serialize as a blank line, which CSV
		// readers (including ours) skip — silently dropping the row. Force
		// an explicitly quoted empty field instead.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return err
			}
			continue
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the named file, creating or truncating it.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// inferKind scans column j of the records and picks the narrowest kind that
// parses every non-empty cell.
func inferKind(records [][]string, j int) Kind {
	sawAny := false
	isInt, isFloat, isBool := true, true, true
	for _, rec := range records {
		s := strings.TrimSpace(rec[j])
		if s == "" {
			continue
		}
		sawAny = true
		if isInt {
			if _, err := strconv.ParseInt(s, 10, 64); err != nil {
				isInt = false
			}
		}
		if isFloat {
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				isFloat = false
			}
		}
		if isBool {
			switch strings.ToLower(s) {
			case "true", "false", "0", "1":
			default:
				isBool = false
			}
		}
		if !isInt && !isFloat && !isBool {
			return KindString
		}
	}
	if !sawAny {
		return KindString
	}
	switch {
	case isInt:
		return KindInt
	case isFloat:
		return KindFloat
	case isBool:
		return KindBool
	default:
		return KindString
	}
}
