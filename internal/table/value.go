// Package table provides the tabular-data substrate for the Magellan EM
// ecosystem: typed in-memory tables, CSV input/output, a metadata catalog
// holding key and foreign-key constraints, profiling, sampling, and the
// intelligent down-sampler used by the PyMatcher how-to guide.
//
// The paper builds PyMatcher on top of Pandas dataframes plus a stand-alone
// catalog for key/FK metadata; this package plays both roles. Tables are
// row-major and immutable-schema: rows may be appended or filtered, but the
// column set is fixed at construction.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// The supported column kinds. KindString is the common case for EM data.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a tagged union holding one cell of a table. The zero Value is a
// null string.
type Value struct {
	Kind  Kind
	Null  bool
	Str   string
	Int   int64
	Float float64
	Bool  bool
}

// String returns a string Value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int returns an int Value.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float returns a float Value.
func Float(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// Bool returns a bool Value.
func Bool(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Null returns a null Value of the given kind.
func Null(k Kind) Value { return Value{Kind: k, Null: true} }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.Null }

// AsString renders the value as a string. Null values render as the empty
// string; this matches how EM feature functions treat missing data.
func (v Value) AsString() string {
	if v.Null {
		return ""
	}
	switch v.Kind {
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	default:
		return ""
	}
}

// AsFloat converts the value to a float64. Null yields NaN-free 0 with
// ok=false so callers can treat missing numerics explicitly.
func (v Value) AsFloat() (f float64, ok bool) {
	if v.Null {
		return 0, false
	}
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsInt converts the value to an int64 when it is integral.
func (v Value) AsInt() (i int64, ok bool) {
	if v.Null {
		return 0, false
	}
	switch v.Kind {
	case KindInt:
		return v.Int, true
	case KindFloat:
		if v.Float == float64(int64(v.Float)) {
			return int64(v.Float), true
		}
		return 0, false
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
		if err != nil {
			return 0, false
		}
		return i, true
	default:
		return 0, false
	}
}

// Equal reports deep equality of two values. Nulls compare equal only to
// nulls of any kind (EM treats all missing data alike).
func (v Value) Equal(w Value) bool {
	if v.Null || w.Null {
		return v.Null && w.Null
	}
	if v.Kind != w.Kind {
		// Numeric cross-kind comparison.
		vf, vok := v.AsFloat()
		wf, wok := w.AsFloat()
		if vok && wok && (v.Kind == KindInt || v.Kind == KindFloat) &&
			(w.Kind == KindInt || w.Kind == KindFloat) {
			return vf == wf
		}
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == w.Str
	case KindInt:
		return v.Int == w.Int
	case KindFloat:
		return v.Float == w.Float
	case KindBool:
		return v.Bool == w.Bool
	default:
		return false
	}
}

// Less orders values of the same kind; nulls sort first. Values of different
// kinds are ordered by kind.
func (v Value) Less(w Value) bool {
	if v.Null != w.Null {
		return v.Null
	}
	if v.Null {
		return false
	}
	if v.Kind != w.Kind {
		return v.Kind < w.Kind
	}
	switch v.Kind {
	case KindString:
		return v.Str < w.Str
	case KindInt:
		return v.Int < w.Int
	case KindFloat:
		return v.Float < w.Float
	case KindBool:
		return !v.Bool && w.Bool
	default:
		return false
	}
}

// ParseValue parses s into a Value of kind k. An empty string becomes null
// for non-string kinds, and a present-but-empty string for KindString.
func ParseValue(s string, k Kind) (Value, error) {
	switch k {
	case KindString:
		return String(s), nil
	case KindInt:
		if strings.TrimSpace(s) == "" {
			return Null(k), nil
		}
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		if strings.TrimSpace(s) == "" {
			return Null(k), nil
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindBool:
		if strings.TrimSpace(s) == "" {
			return Null(k), nil
		}
		b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(s)))
		if err != nil {
			return Value{}, fmt.Errorf("parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	default:
		return Value{}, fmt.Errorf("unknown kind %v", k)
	}
}
