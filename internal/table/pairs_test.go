package table

import (
	"fmt"
	"testing"
)

// TestAppendPairsMatchesAppendPair: the batch API must leave the pair
// table in exactly the state repeated AppendPair calls would, including
// the sequential _id column, across multiple batches and empty batches.
func TestAppendPairsMatchesAppendPair(t *testing.T) {
	lt := New("L", StringSchema("id"))
	rt := New("R", StringSchema("id"))
	one, err := NewPairTable("one", lt, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewPairTable("batch", lt, rt, nil)
	if err != nil {
		t.Fatal(err)
	}

	var ids []PairID
	for i := 0; i < 57; i++ {
		ids = append(ids, PairID{L: fmt.Sprintf("a%d", i), R: fmt.Sprintf("b%d", i%7)})
	}
	for _, id := range ids {
		AppendPair(one, id.L, id.R)
	}
	// Split the same stream over several batches, with an empty batch in
	// the middle — the shapes blocker shard merges produce.
	AppendPairs(batch, ids[:20])
	AppendPairs(batch, nil)
	AppendPairs(batch, ids[20:21])
	AppendPairs(batch, ids[21:])

	if one.Len() != batch.Len() {
		t.Fatalf("lengths differ: %d vs %d", one.Len(), batch.Len())
	}
	for i := 0; i < one.Len(); i++ {
		ra, rb := one.Row(i), batch.Row(i)
		for j := range ra {
			if ra[j].AsString() != rb[j].AsString() {
				t.Fatalf("row %d col %d: %q vs %q", i, j, rb[j].AsString(), ra[j].AsString())
			}
		}
	}
	// _ids are sequential ints.
	for i := 0; i < batch.Len(); i++ {
		if got := batch.Get(i, "_id").AsString(); got != fmt.Sprint(i) {
			t.Fatalf("_id[%d] = %q", i, got)
		}
	}
}

// TestAppendPairsRejectsWrongSchema: the batch writer refuses tables that
// do not use the conventional 3-column pair schema.
func TestAppendPairsRejectsWrongSchema(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-pair schema")
		}
	}()
	AppendPairs(New("bad", StringSchema("x", "y")), []PairID{{L: "a", R: "b"}})
}
