package table

import (
	"math/rand"
	"strings"
	"testing"
)

func personTable(t *testing.T) *Table {
	t.Helper()
	tab := New("A", StringSchema("id", "name", "city", "state"))
	rows := [][]string{
		{"a1", "Dave Smith", "Madison", "WI"},
		{"a2", "Joe Wilson", "San Jose", "CA"},
		{"a3", "Dan Smith", "Middleton", "WI"},
	}
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := tab.SetKey("id"); err != nil {
		t.Fatalf("set key: %v", err)
	}
	return tab
}

func TestAppendAndGet(t *testing.T) {
	tab := personTable(t)
	if tab.Len() != 3 {
		t.Fatalf("len = %d, want 3", tab.Len())
	}
	if got := tab.Get(0, "name").AsString(); got != "Dave Smith" {
		t.Errorf("Get(0,name) = %q", got)
	}
	if got := tab.Get(2, "state").AsString(); got != "WI" {
		t.Errorf("Get(2,state) = %q", got)
	}
}

func TestAppendArityMismatch(t *testing.T) {
	tab := New("A", StringSchema("id", "name"))
	if err := tab.Append(Row{String("x")}); err == nil {
		t.Fatal("want error for short row")
	}
	if err := tab.AppendStrings("a", "b", "c"); err == nil {
		t.Fatal("want error for long string row")
	}
}

func TestSetKeyRejectsDuplicates(t *testing.T) {
	tab := New("A", StringSchema("id", "name"))
	tab.MustAppend(String("x"), String("n1"))
	tab.MustAppend(String("x"), String("n2"))
	if err := tab.SetKey("id"); err == nil {
		t.Fatal("want duplicate-key error")
	}
}

func TestSetKeyRejectsNulls(t *testing.T) {
	tab := New("A", StringSchema("id", "name"))
	tab.MustAppend(Null(KindString), String("n1"))
	if err := tab.SetKey("id"); err == nil {
		t.Fatal("want null-key error")
	}
}

func TestSetKeyMissingColumn(t *testing.T) {
	tab := New("A", StringSchema("id"))
	if err := tab.SetKey("nope"); err == nil {
		t.Fatal("want missing-column error")
	}
}

func TestProjectPreservesKey(t *testing.T) {
	tab := personTable(t)
	p, err := tab.Project("id", "name")
	if err != nil {
		t.Fatal(err)
	}
	if p.Key() != "id" {
		t.Errorf("projected key = %q, want id", p.Key())
	}
	if p.Schema().Len() != 2 || p.Len() != 3 {
		t.Errorf("projection shape = %dx%d", p.Len(), p.Schema().Len())
	}
	p2, err := tab.Project("name")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Key() != "" {
		t.Errorf("key should drop when projected out, got %q", p2.Key())
	}
}

func TestProjectMissingColumn(t *testing.T) {
	tab := personTable(t)
	if _, err := tab.Project("bogus"); err == nil {
		t.Fatal("want error for missing column")
	}
}

func TestFilter(t *testing.T) {
	tab := personTable(t)
	wi := tab.Filter(func(r Row) bool { return r[3].AsString() == "WI" })
	if wi.Len() != 2 {
		t.Fatalf("filter WI = %d rows, want 2", wi.Len())
	}
	if wi.Key() != "id" {
		t.Error("filter should preserve key metadata")
	}
}

func TestSortBy(t *testing.T) {
	tab := personTable(t)
	if err := tab.SortBy("name"); err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for i := 0; i < tab.Len(); i++ {
		got = append(got, tab.Get(i, "name").AsString())
	}
	want := []string{"Dan Smith", "Dave Smith", "Joe Wilson"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted names = %v, want %v", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := personTable(t)
	c := tab.Clone()
	c.Set(0, "name", String("changed"))
	if tab.Get(0, "name").AsString() == "changed" {
		t.Fatal("clone shares row storage with original")
	}
}

func TestAddColumn(t *testing.T) {
	tab := personTable(t)
	vals := []Value{Int(1), Int(2), Int(3)}
	out, err := tab.AddColumn(Column{Name: "score", Kind: KindInt}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := out.Get(1, "score").AsInt(); got != 2 {
		t.Errorf("score[1] = %d, want 2", got)
	}
	if _, err := tab.AddColumn(Column{Name: "name", Kind: KindInt}, vals); err == nil {
		t.Error("want error adding duplicate column")
	}
	if _, err := tab.AddColumn(Column{Name: "x", Kind: KindInt}, vals[:1]); err == nil {
		t.Error("want error for wrong value count")
	}
}

func TestConcat(t *testing.T) {
	a := personTable(t)
	b := New("B", StringSchema("id", "name", "city", "state"))
	b.MustAppend(String("b1"), String("X"), String("Y"), String("Z"))
	out, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Errorf("concat len = %d, want 4", out.Len())
	}
	c := New("C", StringSchema("other"))
	if _, err := a.Concat(c); err == nil {
		t.Error("want schema-mismatch error")
	}
}

func TestValueConversions(t *testing.T) {
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Errorf("Int.AsFloat = %v,%v", f, ok)
	}
	if i, ok := Float(3.0).AsInt(); !ok || i != 3 {
		t.Errorf("Float(3).AsInt = %v,%v", i, ok)
	}
	if _, ok := Float(3.5).AsInt(); ok {
		t.Error("Float(3.5).AsInt should fail")
	}
	if s := Null(KindInt).AsString(); s != "" {
		t.Errorf("null AsString = %q", s)
	}
	if f, ok := String(" 2.5 ").AsFloat(); !ok || f != 2.5 {
		t.Errorf("string AsFloat = %v,%v", f, ok)
	}
	if !Int(2).Equal(Float(2)) {
		t.Error("cross-kind numeric equality failed")
	}
	if !Null(KindInt).Equal(Null(KindString)) {
		t.Error("nulls of different kinds should be equal")
	}
	if Null(KindInt).Equal(Int(0)) {
		t.Error("null should not equal zero")
	}
}

func TestValueLess(t *testing.T) {
	if !Null(KindString).Less(String("a")) {
		t.Error("null should sort before values")
	}
	if !String("a").Less(String("b")) || String("b").Less(String("a")) {
		t.Error("string ordering broken")
	}
	if !Int(1).Less(Int(2)) {
		t.Error("int ordering broken")
	}
	if !Bool(false).Less(Bool(true)) {
		t.Error("bool ordering broken")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42", KindInt)
	if err != nil || v.Int != 42 {
		t.Errorf("parse int: %v %v", v, err)
	}
	if v, err := ParseValue("", KindFloat); err != nil || !v.IsNull() {
		t.Error("empty float should parse to null")
	}
	if v, err := ParseValue("", KindString); err != nil || v.IsNull() || v.Str != "" {
		t.Error("empty string should stay a present empty string")
	}
	if _, err := ParseValue("abc", KindInt); err == nil {
		t.Error("want int parse error")
	}
	if v, err := ParseValue("TRUE", KindBool); err != nil || !v.Bool {
		t.Errorf("bool parse: %v %v", v, err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := StringSchema("a", "b", "c")
	if s.Lookup("b") != 1 || s.Lookup("nope") != -1 {
		t.Error("lookup broken")
	}
	if _, err := NewSchema(Column{Name: "x"}, Column{Name: "x"}); err == nil {
		t.Error("want duplicate-column error")
	}
	if _, err := NewSchema(Column{Name: ""}); err == nil {
		t.Error("want empty-name error")
	}
	if _, err := s.KindOf("nope"); err == nil {
		t.Error("want KindOf error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := personTable(t)
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(buf.String()), "A")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("round trip rows = %d, want %d", got.Len(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		for _, c := range tab.Schema().Names() {
			if got.Get(i, c).AsString() != tab.Get(i, c).AsString() {
				t.Fatalf("cell (%d,%s) mismatch", i, c)
			}
		}
	}
}

// TestCSVEmptySingleColumnRoundTrip pins the fix for a row-dropping bug
// found by FuzzReadCSV: a single-column row holding an empty value used to
// serialize as a blank line, which readers skip.
func TestCSVEmptySingleColumnRoundTrip(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader("name\nbob\n\"\"\nalice\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Len())
	}
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ReadCSV(strings.NewReader(buf.String()), "t")
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 3 {
		t.Fatalf("round trip rows = %d, want 3\ncsv:\n%s", again.Len(), buf.String())
	}
	if got := again.Get(1, "name").AsString(); got != "" {
		t.Fatalf("middle row should be empty, got %q", got)
	}
}

func TestCSVTypeInference(t *testing.T) {
	in := "id,age,score,flag,name\n1,30,1.5,true,bob\n2,,2.5,false,alice\n"
	tab, err := ReadCSV(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := map[string]Kind{"id": KindInt, "age": KindInt, "score": KindFloat, "flag": KindBool, "name": KindString}
	for name, k := range wantKinds {
		got, err := tab.Schema().KindOf(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Errorf("kind(%s) = %v, want %v", name, got, k)
		}
	}
	if !tab.Get(1, "age").IsNull() {
		t.Error("missing int cell should be null")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "t"); err == nil {
		t.Error("want empty-input error")
	}
}

func TestProfile(t *testing.T) {
	tab := New("A", MustSchema(
		Column{Name: "id", Kind: KindString},
		Column{Name: "n", Kind: KindInt},
	))
	tab.MustAppend(String("a"), Int(1))
	tab.MustAppend(String("b"), Int(1))
	tab.MustAppend(String("c"), Null(KindInt))
	p := tab.Profile(3)
	if p.Rows != 3 {
		t.Fatalf("rows = %d", p.Rows)
	}
	idCol := p.Columns[0]
	if !idCol.IsUnique {
		t.Error("id should be unique")
	}
	nCol := p.Columns[1]
	if nCol.Nulls != 1 || nCol.Distinct != 1 {
		t.Errorf("n profile: nulls=%d distinct=%d", nCol.Nulls, nCol.Distinct)
	}
	if len(nCol.TopValues) == 0 || nCol.TopValues[0].Value != "1" || nCol.TopValues[0].Count != 2 {
		t.Errorf("top values = %v", nCol.TopValues)
	}
	if got := tab.KeyCandidates(); len(got) != 1 || got[0] != "id" {
		t.Errorf("key candidates = %v", got)
	}
	if !strings.Contains(p.String(), "unique") {
		t.Error("profile report should flag unique columns")
	}
}

func TestSampleAndSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := New("A", StringSchema("id"))
	for i := 0; i < 100; i++ {
		tab.MustAppend(String(string(rune('a' + i%26))))
	}
	s := tab.Sample(10, rng)
	if s.Len() != 10 {
		t.Fatalf("sample len = %d", s.Len())
	}
	all := tab.Sample(1000, rng)
	if all.Len() != 100 {
		t.Fatalf("oversample len = %d", all.Len())
	}
	tr, te, err := tab.Split(0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 70 || te.Len() != 30 {
		t.Fatalf("split = %d/%d", tr.Len(), te.Len())
	}
	if _, _, err := tab.Split(1.5, rng); err == nil {
		t.Error("want out-of-range error")
	}
	wr := tab.SampleWithReplacement(200, rng)
	if wr.Len() != 200 {
		t.Fatalf("with-replacement len = %d", wr.Len())
	}
}

func TestStratifiedSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := New("L", MustSchema(Column{Name: "label", Kind: KindBool}))
	for i := 0; i < 90; i++ {
		tab.MustAppend(Bool(false))
	}
	for i := 0; i < 10; i++ {
		tab.MustAppend(Bool(true))
	}
	a, b, err := tab.StratifiedSplit("label", 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	count := func(tb *Table) (pos int) {
		for i := 0; i < tb.Len(); i++ {
			if tb.Get(i, "label").Bool {
				pos++
			}
		}
		return
	}
	if count(a) != 5 || count(b) != 5 {
		t.Errorf("stratified positives = %d/%d, want 5/5", count(a), count(b))
	}
	if _, _, err := tab.StratifiedSplit("nope", 0.5, rng); err == nil {
		t.Error("want missing-column error")
	}
}

func TestKeyIndex(t *testing.T) {
	tab := personTable(t)
	idx, err := tab.KeyIndex()
	if err != nil {
		t.Fatal(err)
	}
	if idx["a2"] != 1 {
		t.Errorf("idx[a2] = %d", idx["a2"])
	}
	noKey := New("N", StringSchema("x"))
	if _, err := noKey.KeyIndex(); err == nil {
		t.Error("want no-key error")
	}
}

func TestCatalogPairLifecycle(t *testing.T) {
	a := personTable(t)
	b := personTable(t)
	b.SetName("B")
	cat := NewCatalog()
	pair, err := NewPairTable("C", a, b, cat)
	if err != nil {
		t.Fatal(err)
	}
	AppendPair(pair, "a1", "a2")
	AppendPair(pair, "a3", "a1")
	if err := cat.ValidatePair(pair); err != nil {
		t.Fatalf("validate: %v", err)
	}
	meta, ok := cat.PairMeta(pair)
	if !ok || meta.LTable != a {
		t.Fatal("pair meta missing")
	}
	// Simulate an outside tool deleting a base row: validation must fail.
	AppendPair(pair, "missing", "a1")
	if err := cat.ValidatePair(pair); err == nil {
		t.Fatal("want FK violation after dangling id")
	}
	cat.Drop(pair)
	if err := cat.ValidatePair(pair); err == nil {
		t.Fatal("want not-registered error after drop")
	}
}

func TestCatalogRegisterErrors(t *testing.T) {
	a := personTable(t)
	cat := NewCatalog()
	noKey := New("NK", StringSchema("id"))
	p := New("P", DefaultPairSchema())
	if err := cat.RegisterPair(p, PairMeta{LTable: a, RTable: noKey, LID: "ltable_id", RID: "rtable_id"}); err == nil {
		t.Error("want error for keyless base table")
	}
	if err := cat.RegisterPair(p, PairMeta{LTable: a, RTable: a, LID: "bogus", RID: "rtable_id"}); err == nil {
		t.Error("want error for missing id column")
	}
}

func TestDownSampleKeepsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New("A", StringSchema("id", "name"))
	b := New("B", StringSchema("id", "name"))
	// 500 A rows; B rows 0..99 are near-copies of A rows 0..99.
	names := []string{"acme corp", "globex inc", "initech llc", "umbrella co", "stark industries"}
	for i := 0; i < 500; i++ {
		a.MustAppend(String("a"+itoa(i)), String(names[i%len(names)]+" branch "+itoa(i)))
	}
	for i := 0; i < 100; i++ {
		b.MustAppend(String("b"+itoa(i)), String(names[i%len(names)]+" branch "+itoa(i)))
	}
	a.MustSetKey("id")
	b.MustSetKey("id")
	as, bs, err := DownSample(a, b, 100, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if as.Len() != 100 || bs.Len() != 50 {
		t.Fatalf("downsample sizes = %d/%d", as.Len(), bs.Len())
	}
	// Every sampled B tuple's exact counterpart should appear in A'.
	aNames := map[string]bool{}
	for i := 0; i < as.Len(); i++ {
		aNames[as.Get(i, "name").AsString()] = true
	}
	hits := 0
	for i := 0; i < bs.Len(); i++ {
		if aNames[bs.Get(i, "name").AsString()] {
			hits++
		}
	}
	if hits < bs.Len()*8/10 {
		t.Errorf("only %d/%d sampled B tuples have their match in A'", hits, bs.Len())
	}
}

func TestDownSampleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	empty := New("E", StringSchema("id"))
	full := New("F", StringSchema("id"))
	full.MustAppend(String("x"))
	if _, _, err := DownSample(empty, full, 1, 1, rng); err == nil {
		t.Error("want empty-table error")
	}
	if _, _, err := DownSample(full, full, 0, 1, rng); err == nil {
		t.Error("want size error")
	}
	// Oversized request returns clones.
	as, bs, err := DownSample(full, full, 10, 10, rng)
	if err != nil || as.Len() != 1 || bs.Len() != 1 {
		t.Errorf("oversized downsample: %v %d %d", err, as.Len(), bs.Len())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
