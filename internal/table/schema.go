package table

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns with unique names.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// non-empty and unique (case-sensitive).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error; it is intended for
// statically known schemas in tests and generators.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// StringSchema builds a schema in which every named column has KindString.
func StringSchema(names ...string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n, Kind: KindString}
	}
	return MustSchema(cols...)
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Lookup returns the index of the named column, or -1 if absent.
func (s *Schema) Lookup(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { return s.Lookup(name) >= 0 }

// KindOf returns the kind of the named column; it returns an error naming
// the missing column otherwise.
func (s *Schema) KindOf(name string) (Kind, error) {
	i := s.Lookup(name)
	if i < 0 {
		return 0, fmt.Errorf("schema: no column %q (have %s)", name, strings.Join(s.Names(), ", "))
	}
	return s.cols[i].Kind, nil
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != t.cols[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing only the named columns, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.Lookup(n)
		if i < 0 {
			return nil, fmt.Errorf("schema: project: no column %q", n)
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...)
}

// String renders the schema as "name:kind, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}
