package table

import (
	"fmt"
	"sync"
)

// PairMeta records the provenance of a candidate-set (pair) table: which
// base tables its ltable/rtable id columns refer to. This is the key-FK
// metadata the paper stores in a stand-alone catalog so that pair tables
// can carry only (A.id, B.id) instead of all attributes.
type PairMeta struct {
	LTable *Table // left base table
	RTable *Table // right base table
	LID    string // column of the pair table holding left keys
	RID    string // column of the pair table holding right keys
}

// Catalog stores metadata about tables — declared keys and FK relationships
// of pair tables to their base tables — outside the tables themselves,
// mirroring the global catalog Q of the paper. It is safe for concurrent
// use.
type Catalog struct {
	mu    sync.RWMutex
	pairs map[*Table]PairMeta
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{pairs: make(map[*Table]PairMeta)}
}

// RegisterPair records that pair is a candidate-set table whose LID/RID
// columns are foreign keys into lt and rt respectively. Both base tables
// must have declared keys, and the pair table must contain the id columns.
func (c *Catalog) RegisterPair(pair *Table, meta PairMeta) error {
	if meta.LTable == nil || meta.RTable == nil {
		return fmt.Errorf("catalog: pair %q: nil base table", pair.Name())
	}
	if meta.LTable.Key() == "" || meta.RTable.Key() == "" {
		return fmt.Errorf("catalog: pair %q: base tables must have keys", pair.Name())
	}
	if !pair.Schema().Has(meta.LID) || !pair.Schema().Has(meta.RID) {
		return fmt.Errorf("catalog: pair %q: missing id columns %q/%q", pair.Name(), meta.LID, meta.RID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pairs[pair] = meta
	return nil
}

// PairMeta returns the recorded metadata for a pair table.
func (c *Catalog) PairMeta(pair *Table) (PairMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.pairs[pair]
	return m, ok
}

// Drop removes any metadata for the table.
func (c *Catalog) Drop(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pairs, t)
}

// ValidatePair re-checks the FK constraints of a pair table against its base
// tables: every left id must exist in LTable and every right id in RTable.
// This is the "self-contained tool" behaviour from the paper: a command
// about to rely on catalog metadata first verifies the metadata still holds
// (another tool may have deleted base rows without updating the catalog).
func (c *Catalog) ValidatePair(pair *Table) error {
	meta, ok := c.PairMeta(pair)
	if !ok {
		return fmt.Errorf("catalog: pair %q: not registered", pair.Name())
	}
	lidx, err := meta.LTable.KeyIndex()
	if err != nil {
		return fmt.Errorf("catalog: pair %q: %w", pair.Name(), err)
	}
	ridx, err := meta.RTable.KeyIndex()
	if err != nil {
		return fmt.Errorf("catalog: pair %q: %w", pair.Name(), err)
	}
	for i := 0; i < pair.Len(); i++ {
		l := pair.Get(i, meta.LID).AsString()
		if _, ok := lidx[l]; !ok {
			return fmt.Errorf("catalog: pair %q row %d: left id %q not in %q — FK constraint violated", pair.Name(), i, l, meta.LTable.Name())
		}
		r := pair.Get(i, meta.RID).AsString()
		if _, ok := ridx[r]; !ok {
			return fmt.Errorf("catalog: pair %q row %d: right id %q not in %q — FK constraint violated", pair.Name(), i, r, meta.RTable.Name())
		}
	}
	return nil
}

// DefaultPairSchema returns the conventional schema for a candidate set:
// (_id:int, ltable_id:string, rtable_id:string).
func DefaultPairSchema() *Schema {
	return MustSchema(
		Column{Name: "_id", Kind: KindInt},
		Column{Name: "ltable_id", Kind: KindString},
		Column{Name: "rtable_id", Kind: KindString},
	)
}

// NewPairTable creates a candidate-set table over lt and rt with the
// conventional schema, declares _id as its key, and registers it in the
// catalog when one is supplied (cat may be nil).
func NewPairTable(name string, lt, rt *Table, cat *Catalog) (*Table, error) {
	p := New(name, DefaultPairSchema())
	p.key = "_id"
	if cat != nil {
		if err := cat.RegisterPair(p, PairMeta{LTable: lt, RTable: rt, LID: "ltable_id", RID: "rtable_id"}); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// AppendPair appends one (lid, rid) candidate to a pair table with the
// conventional schema, assigning a sequential _id.
func AppendPair(pair *Table, lid, rid string) {
	pair.MustAppend(Int(int64(pair.Len())), String(lid), String(rid))
}

// PairID is one (left id, right id) candidate row for batch appends.
type PairID struct {
	L, R string
}

// AppendPairs appends every id pair to a pair table with the conventional
// schema in one call, assigning sequential _ids. It grows row storage once
// and carves all cells from a single backing allocation, so blocker inner
// loops pay two allocations per batch instead of two per pair. Worker-local
// buffers concatenated in shard order through this call reproduce the
// serial AppendPair output exactly.
func AppendPairs(pair *Table, ids []PairID) {
	if len(ids) == 0 {
		return
	}
	if pair.schema.Len() != 3 {
		panic(fmt.Sprintf("table %q: AppendPairs needs the conventional 3-column pair schema, have %d columns", pair.name, pair.schema.Len()))
	}
	base := len(pair.rows)
	if cap(pair.rows)-base < len(ids) {
		grown := make([]Row, base, base+len(ids))
		copy(grown, pair.rows)
		pair.rows = grown
	}
	cells := make([]Value, 3*len(ids))
	for k, id := range ids {
		r := cells[3*k : 3*k+3 : 3*k+3]
		r[0], r[1], r[2] = Int(int64(base+k)), String(id.L), String(id.R)
		pair.rows = append(pair.rows, Row(r))
	}
}
