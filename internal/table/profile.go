package table

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnProfile summarizes one column of a table: the output of the
// "data exploration / profiling" step of the how-to guide (the paper points
// users at pandas-profiling; this is our equivalent).
type ColumnProfile struct {
	Name       string
	Kind       Kind
	Count      int     // total rows
	Nulls      int     // null cells
	Empty      int     // non-null but empty-string cells
	Distinct   int     // distinct non-null values
	MinLen     int     // min string length of non-null values
	MaxLen     int     // max string length
	AvgLen     float64 // mean string length
	Min        Value   // minimum value (by Value.Less)
	Max        Value   // maximum value
	TopValues  []ValueCount
	IsUnique   bool // distinct == non-null count (key candidate)
	NullRatio  float64
	EmptyRatio float64
}

// ValueCount is one entry of a frequency histogram.
type ValueCount struct {
	Value string
	Count int
}

// TableProfile summarizes a whole table.
type TableProfile struct {
	Name    string
	Rows    int
	Columns []ColumnProfile
}

// Profile computes per-column statistics for the table. topK bounds the
// size of each column's value histogram (topK <= 0 means 5).
func (t *Table) Profile(topK int) TableProfile {
	if topK <= 0 {
		topK = 5
	}
	prof := TableProfile{Name: t.name, Rows: t.Len()}
	for j := 0; j < t.schema.Len(); j++ {
		col := t.schema.Col(j)
		cp := ColumnProfile{Name: col.Name, Kind: col.Kind, Count: t.Len(), MinLen: -1}
		counts := make(map[string]int)
		var totalLen int
		first := true
		for _, r := range t.rows {
			v := r[j]
			if v.IsNull() {
				cp.Nulls++
				continue
			}
			s := v.AsString()
			if s == "" {
				cp.Empty++
			}
			counts[s]++
			totalLen += len(s)
			if cp.MinLen < 0 || len(s) < cp.MinLen {
				cp.MinLen = len(s)
			}
			if len(s) > cp.MaxLen {
				cp.MaxLen = len(s)
			}
			if first {
				cp.Min, cp.Max = v, v
				first = false
			} else {
				if v.Less(cp.Min) {
					cp.Min = v
				}
				if cp.Max.Less(v) {
					cp.Max = v
				}
			}
		}
		nonNull := cp.Count - cp.Nulls
		cp.Distinct = len(counts)
		cp.IsUnique = nonNull > 0 && cp.Distinct == nonNull && cp.Nulls == 0
		if nonNull > 0 {
			cp.AvgLen = float64(totalLen) / float64(nonNull)
		}
		if cp.MinLen < 0 {
			cp.MinLen = 0
		}
		if cp.Count > 0 {
			cp.NullRatio = float64(cp.Nulls) / float64(cp.Count)
			cp.EmptyRatio = float64(cp.Empty) / float64(cp.Count)
		}
		cp.TopValues = topValues(counts, topK)
		prof.Columns = append(prof.Columns, cp)
	}
	return prof
}

func topValues(counts map[string]int, k int) []ValueCount {
	vcs := make([]ValueCount, 0, len(counts))
	for v, c := range counts {
		vcs = append(vcs, ValueCount{Value: v, Count: c})
	}
	sort.Slice(vcs, func(a, b int) bool {
		if vcs[a].Count != vcs[b].Count {
			return vcs[a].Count > vcs[b].Count
		}
		return vcs[a].Value < vcs[b].Value
	})
	if len(vcs) > k {
		vcs = vcs[:k]
	}
	return vcs
}

// KeyCandidates returns the names of columns whose values are unique and
// non-null — the columns a user could declare as the table key.
func (t *Table) KeyCandidates() []string {
	var out []string
	prof := t.Profile(1)
	for _, cp := range prof.Columns {
		if cp.IsUnique {
			out = append(out, cp.Name)
		}
	}
	return out
}

// String renders the profile as a fixed-width text report.
func (p TableProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table %q: %d rows, %d columns\n", p.Name, p.Rows, len(p.Columns))
	for _, c := range p.Columns {
		fmt.Fprintf(&b, "  %-20s %-7s nulls=%d (%.1f%%) distinct=%d avglen=%.1f",
			c.Name, c.Kind, c.Nulls, 100*c.NullRatio, c.Distinct, c.AvgLen)
		if c.IsUnique {
			b.WriteString(" [unique]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
