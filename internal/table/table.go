package table

import (
	"fmt"
	"sort"
)

// Row is one record of a table; its length always equals the schema length.
type Row []Value

// Table is an in-memory relation: a named schema plus row-major data.
// It is the Go stand-in for the Pandas dataframes that PyMatcher stores
// tables in. A Table is not safe for concurrent mutation; concurrent reads
// are safe.
type Table struct {
	name   string
	schema *Schema
	rows   []Row
	// key is the name of the key column, or "" when none is declared.
	// The Magellan catalog requires most EM commands to know the key.
	key string
}

// New creates an empty table with the given name and schema.
func New(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetName renames the table.
func (t *Table) SetName(name string) { t.name = name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th row. The returned slice aliases table storage and
// must not be modified.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Get returns the value at row i, named column. It panics if the column is
// absent, mirroring out-of-range slice indexing; use Schema().Has to test.
func (t *Table) Get(i int, col string) Value {
	j := t.schema.Lookup(col)
	if j < 0 {
		panic(fmt.Sprintf("table %q: no column %q", t.name, col))
	}
	return t.rows[i][j]
}

// Set replaces the value at row i, named column.
func (t *Table) Set(i int, col string, v Value) {
	j := t.schema.Lookup(col)
	if j < 0 {
		panic(fmt.Sprintf("table %q: no column %q", t.name, col))
	}
	t.rows[i][j] = v
}

// Append adds a row. The row length must match the schema.
func (t *Table) Append(r Row) error {
	if len(r) != t.schema.Len() {
		return fmt.Errorf("table %q: row has %d values, schema has %d columns", t.name, len(r), t.schema.Len())
	}
	t.rows = append(t.rows, r)
	return nil
}

// MustAppend is Append that panics on arity mismatch; for generators whose
// row shape is statically correct.
func (t *Table) MustAppend(vals ...Value) {
	if err := t.Append(Row(vals)); err != nil {
		panic(err)
	}
}

// MustSetKey is SetKey that panics on error; for fixtures and generators
// whose key column is statically known to be valid.
func (t *Table) MustSetKey(col string) {
	if err := t.SetKey(col); err != nil {
		panic(err)
	}
}

// AppendStrings adds a row of string cells, parsing each into the column's
// declared kind.
func (t *Table) AppendStrings(cells ...string) error {
	if len(cells) != t.schema.Len() {
		return fmt.Errorf("table %q: row has %d cells, schema has %d columns", t.name, len(cells), t.schema.Len())
	}
	r := make(Row, len(cells))
	for i, c := range cells {
		v, err := ParseValue(c, t.schema.Col(i).Kind)
		if err != nil {
			return fmt.Errorf("table %q col %q: %w", t.name, t.schema.Col(i).Name, err)
		}
		r[i] = v
	}
	t.rows = append(t.rows, r)
	return nil
}

// SetKey declares the named column as the table key. It validates that the
// column exists and that its values are unique and non-null — the
// "self-contained" metadata check the paper describes (tools verify their
// metadata before trusting it).
func (t *Table) SetKey(col string) error {
	if !t.schema.Has(col) {
		return fmt.Errorf("table %q: key column %q not in schema", t.name, col)
	}
	if err := t.ValidateKey(col); err != nil {
		return err
	}
	t.key = col
	return nil
}

// Key returns the declared key column name, or "".
func (t *Table) Key() string { return t.key }

// ValidateKey checks that the named column holds unique, non-null values.
func (t *Table) ValidateKey(col string) error {
	j := t.schema.Lookup(col)
	if j < 0 {
		return fmt.Errorf("table %q: no column %q", t.name, col)
	}
	seen := make(map[string]int, len(t.rows))
	for i, r := range t.rows {
		if r[j].IsNull() {
			return fmt.Errorf("table %q: key %q is null at row %d", t.name, col, i)
		}
		s := r[j].AsString()
		if prev, dup := seen[s]; dup {
			return fmt.Errorf("table %q: key %q duplicated at rows %d and %d (value %q)", t.name, col, prev, i, s)
		}
		seen[s] = i
	}
	return nil
}

// KeyIndex builds a map from key value (as string) to row index. The table
// must have a declared key.
func (t *Table) KeyIndex() (map[string]int, error) {
	if t.key == "" {
		return nil, fmt.Errorf("table %q: no key declared", t.name)
	}
	j := t.schema.Lookup(t.key)
	idx := make(map[string]int, len(t.rows))
	for i, r := range t.rows {
		idx[r[j].AsString()] = i
	}
	return idx, nil
}

// Clone returns a deep copy of the table (rows are copied; Values are
// immutable so cells are shared by value).
func (t *Table) Clone() *Table {
	out := &Table{name: t.name, schema: t.schema, key: t.key, rows: make([]Row, len(t.rows))}
	for i, r := range t.rows {
		out.rows[i] = append(Row(nil), r...)
	}
	return out
}

// Project returns a new table containing only the named columns. The key is
// preserved if it is among them.
func (t *Table) Project(names ...string) (*Table, error) {
	sch, err := t.schema.Project(names...)
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", t.name, err)
	}
	idxs := make([]int, len(names))
	for i, n := range names {
		idxs[i] = t.schema.Lookup(n)
	}
	out := New(t.name, sch)
	out.rows = make([]Row, len(t.rows))
	for i, r := range t.rows {
		nr := make(Row, len(idxs))
		for k, j := range idxs {
			nr[k] = r[j]
		}
		out.rows[i] = nr
	}
	if t.key != "" && sch.Has(t.key) {
		out.key = t.key
	}
	return out, nil
}

// Filter returns a new table containing the rows for which keep returns
// true. Metadata (name, key) is preserved.
func (t *Table) Filter(keep func(Row) bool) *Table {
	out := &Table{name: t.name, schema: t.schema, key: t.key}
	for _, r := range t.rows {
		if keep(r) {
			out.rows = append(out.rows, r)
		}
	}
	return out
}

// Select returns a new table containing the rows at the given indices, in
// order. Indices may repeat.
func (t *Table) Select(idxs []int) *Table {
	out := &Table{name: t.name, schema: t.schema, key: t.key}
	out.rows = make([]Row, len(idxs))
	for k, i := range idxs {
		out.rows[k] = t.rows[i]
	}
	return out
}

// Head returns a new table with at most n leading rows.
func (t *Table) Head(n int) *Table {
	if n > len(t.rows) {
		n = len(t.rows)
	}
	out := &Table{name: t.name, schema: t.schema, key: t.key}
	out.rows = append(out.rows, t.rows[:n]...)
	return out
}

// SortBy sorts rows in place by the named columns ascending.
func (t *Table) SortBy(cols ...string) error {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		j := t.schema.Lookup(c)
		if j < 0 {
			return fmt.Errorf("table %q: sort: no column %q", t.name, c)
		}
		idxs[i] = j
	}
	sort.SliceStable(t.rows, func(a, b int) bool {
		for _, j := range idxs {
			va, vb := t.rows[a][j], t.rows[b][j]
			if va.Less(vb) {
				return true
			}
			if vb.Less(va) {
				return false
			}
		}
		return false
	})
	return nil
}

// Column returns all values of the named column as a slice.
func (t *Table) Column(name string) ([]Value, error) {
	j := t.schema.Lookup(name)
	if j < 0 {
		return nil, fmt.Errorf("table %q: no column %q", t.name, name)
	}
	out := make([]Value, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[j]
	}
	return out, nil
}

// Strings returns the named column rendered as strings (nulls become "").
func (t *Table) Strings(name string) ([]string, error) {
	j := t.schema.Lookup(name)
	if j < 0 {
		return nil, fmt.Errorf("table %q: no column %q", t.name, name)
	}
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[j].AsString()
	}
	return out, nil
}

// AddColumn appends a new column with the given values (one per row) and
// returns a new table; the receiver is unchanged.
func (t *Table) AddColumn(col Column, vals []Value) (*Table, error) {
	if len(vals) != len(t.rows) {
		return nil, fmt.Errorf("table %q: add column %q: %d values for %d rows", t.name, col.Name, len(vals), len(t.rows))
	}
	if t.schema.Has(col.Name) {
		return nil, fmt.Errorf("table %q: add column: %q already exists", t.name, col.Name)
	}
	sch, err := NewSchema(append(t.schema.Columns(), col)...)
	if err != nil {
		return nil, err
	}
	out := &Table{name: t.name, schema: sch, key: t.key}
	out.rows = make([]Row, len(t.rows))
	for i, r := range t.rows {
		nr := make(Row, 0, len(r)+1)
		nr = append(nr, r...)
		nr = append(nr, vals[i])
		out.rows[i] = nr
	}
	return out, nil
}

// Concat appends all rows of u (which must have an equal schema) to a copy
// of t.
func (t *Table) Concat(u *Table) (*Table, error) {
	if !t.schema.Equal(u.schema) {
		return nil, fmt.Errorf("concat: schema mismatch: [%s] vs [%s]", t.schema, u.schema)
	}
	out := t.Clone()
	out.rows = append(out.rows, u.rows...)
	return out, nil
}
