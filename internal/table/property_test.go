package table

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty: any table of printable string cells survives a
// CSV write/read round trip, including cells containing commas, quotes,
// and newlines (the CSV writer must escape them).
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(cells [][3]string) bool {
		tab := New("P", StringSchema("c0", "c1", "c2"))
		for _, row := range cells {
			r := make(Row, 3)
			for j, s := range row {
				// encoding/csv normalizes \r\n to \n on read; avoid
				// feeding sequences the format cannot represent
				// losslessly.
				s = strings.ReplaceAll(s, "\r", "")
				r[j] = String(s)
			}
			if err := tab.Append(r); err != nil {
				return false
			}
		}
		var buf strings.Builder
		if err := tab.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(strings.NewReader(buf.String()), "P")
		if err != nil {
			return false
		}
		if got.Len() != tab.Len() {
			return false
		}
		for i := 0; i < tab.Len(); i++ {
			for _, c := range []string{"c0", "c1", "c2"} {
				want := tab.Get(i, c).AsString()
				have := got.Get(i, c).AsString()
				if want != have {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(6)
			cells := make([][3]string, n)
			alphabet := []rune("ab,\"\n xyéz")
			for i := range cells {
				for j := 0; j < 3; j++ {
					k := rng.Intn(8)
					var sb strings.Builder
					for c := 0; c < k; c++ {
						sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
					}
					cells[i][j] = sb.String()
				}
			}
			args[0] = reflect.ValueOf(cells)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSampleIsSubsetProperty: samples only contain rows of the original,
// with no index out of range, for any sizes.
func TestSampleIsSubsetProperty(t *testing.T) {
	f := func(n uint8, k uint8, seed int64) bool {
		rows := int(n%50) + 1
		tab := New("S", StringSchema("id"))
		for i := 0; i < rows; i++ {
			tab.MustAppend(String(itoa(i)))
		}
		rng := rand.New(rand.NewSource(seed))
		s := tab.Sample(int(k), rng)
		if s.Len() > rows {
			return false
		}
		valid := map[string]bool{}
		for i := 0; i < rows; i++ {
			valid[itoa(i)] = true
		}
		seen := map[string]bool{}
		for i := 0; i < s.Len(); i++ {
			id := s.Get(i, "id").AsString()
			if !valid[id] || seen[id] {
				return false // out-of-universe or duplicate (without replacement)
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestProfileCountsProperty: nulls + distinct observations are consistent
// with the row count for arbitrary null patterns.
func TestProfileCountsProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		tab := New("N", StringSchema("v"))
		for i, isNull := range pattern {
			if isNull {
				tab.MustAppend(Null(KindString))
			} else {
				tab.MustAppend(String(itoa(i % 3)))
			}
		}
		p := tab.Profile(10)
		col := p.Columns[0]
		if col.Count != len(pattern) {
			return false
		}
		nonNull := 0
		for _, isNull := range pattern {
			if !isNull {
				nonNull++
			}
		}
		if col.Nulls != len(pattern)-nonNull {
			return false
		}
		return col.Distinct <= nonNull && (nonNull == 0 || col.Distinct >= 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
