package rules

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse turns the textual form of a rule — predicates joined by AND — into
// a Rule. The grammar is
//
//	rule      := predicate { "AND" predicate }
//	predicate := feature op number
//	op        := "<=" | "<" | ">=" | ">" | "==" | "!="
//	feature   := identifier (letters, digits, '_', '.', '(', ')')
//
// matching how PyMatcher users declaratively specify rules over generated
// feature names such as jaccard_3gram_name.
func Parse(name, src string) (Rule, error) {
	toks, err := lex(src)
	if err != nil {
		return Rule{}, fmt.Errorf("rules: parse %q: %w", name, err)
	}
	p := parser{toks: toks}
	r := Rule{Name: name}
	for {
		pred, err := p.predicate()
		if err != nil {
			return Rule{}, fmt.Errorf("rules: parse %q: %w", name, err)
		}
		r.Predicates = append(r.Predicates, pred)
		if p.done() {
			break
		}
		if err := p.expectAnd(); err != nil {
			return Rule{}, fmt.Errorf("rules: parse %q: %w", name, err)
		}
	}
	return r, nil
}

// MustParse is Parse that panics; for statically known rules in tests.
func MustParse(name, src string) Rule {
	r, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseSet parses one rule per non-empty line into a RuleSet, naming the
// rules name#0, name#1, ...
func ParseSet(name, src string) (RuleSet, error) {
	var rs RuleSet
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := Parse(fmt.Sprintf("%s#%d", name, i), line)
		if err != nil {
			return RuleSet{}, err
		}
		rs.Add(r)
	}
	return rs, nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokOp
	tokNumber
	tokAnd
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			i++
			if op == "=" {
				return nil, fmt.Errorf("single '=' at byte %d; use '=='", i-1)
			}
			toks = append(toks, token{tokOp, op})
		case c >= '0' && c <= '9' || c == '-' || c == '.':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' || src[j] == '-' || src[j] == '+') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j]})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if strings.EqualFold(word, "and") {
				toks = append(toks, token{tokAnd, word})
			} else {
				toks = append(toks, token{tokIdent, word})
			}
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q at byte %d", c, i)
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '(' || r == ')'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) next() (token, error) {
	if p.done() {
		return token{}, fmt.Errorf("unexpected end of rule")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *parser) predicate() (Predicate, error) {
	ident, err := p.next()
	if err != nil {
		return Predicate{}, err
	}
	if ident.kind != tokIdent {
		return Predicate{}, fmt.Errorf("expected feature name, got %q", ident.text)
	}
	opTok, err := p.next()
	if err != nil {
		return Predicate{}, err
	}
	if opTok.kind != tokOp {
		return Predicate{}, fmt.Errorf("expected operator after %q, got %q", ident.text, opTok.text)
	}
	var op Op
	switch opTok.text {
	case "<=":
		op = LE
	case "<":
		op = LT
	case ">=":
		op = GE
	case ">":
		op = GT
	case "==":
		op = EQ
	case "!=":
		op = NE
	default:
		return Predicate{}, fmt.Errorf("unknown operator %q", opTok.text)
	}
	numTok, err := p.next()
	if err != nil {
		return Predicate{}, err
	}
	if numTok.kind != tokNumber {
		return Predicate{}, fmt.Errorf("expected number after operator, got %q", numTok.text)
	}
	v, err := strconv.ParseFloat(numTok.text, 64)
	if err != nil {
		return Predicate{}, fmt.Errorf("bad number %q: %w", numTok.text, err)
	}
	return Predicate{Feature: ident.text, Op: op, Value: v}, nil
}

func (p *parser) expectAnd() error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokAnd {
		return fmt.Errorf("expected AND, got %q", t.text)
	}
	return nil
}
