package rules

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseRule asserts two properties of the rule parser over arbitrary
// input: it never panics, and any rule it accepts survives a
// String() → Parse round trip with identical predicates.
func FuzzParseRule(f *testing.F) {
	f.Add("jaccard_3gram_name >= 0.8")
	f.Add("sim >= 0.5 AND len_diff <= 3")
	f.Add("jaccard(name) > 0.7 and cosine(addr) != 0")
	f.Add("a == 1e-9 AND b < -2.5E+10")
	f.Add("x<=.5")
	f.Add("")
	f.Add("AND AND AND")
	f.Add("f >= ")
	f.Add("f = 1")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		for _, p := range r.Predicates {
			if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
				t.Fatalf("parser admitted non-finite value %v from %q", p.Value, src)
			}
		}
		rendered := r.String()
		again, err := Parse("fuzz", rendered)
		if err != nil {
			t.Fatalf("round trip failed: Parse(%q) from source %q: %v", rendered, src, err)
		}
		if !reflect.DeepEqual(r.Predicates, again.Predicates) {
			t.Fatalf("round trip changed predicates:\nsource %q\nfirst  %#v\nsecond %#v", src, r.Predicates, again.Predicates)
		}
	})
}

// FuzzParseSet asserts ParseSet never panics and that accepted sets only
// contain rules the line parser would itself accept.
func FuzzParseSet(f *testing.F) {
	f.Add("a > 1\nb <= 0.5 AND c != 2\n# comment\n\n")
	f.Add("# only a comment")
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := ParseSet("fuzz", src)
		if err != nil {
			return
		}
		for _, r := range rs.Rules {
			if len(r.Predicates) == 0 {
				t.Fatalf("ParseSet admitted an empty rule from %q", src)
			}
			if !strings.HasPrefix(r.Name, "fuzz#") {
				t.Fatalf("rule name %q missing set prefix", r.Name)
			}
		}
	})
}
