// Package rules implements the declarative rule layer of the Magellan
// reproduction: the "rule specification and execution" commands of
// PyMatcher (Table 3) and the blocking rules Falcon extracts from random
// forests (Figure 4).
//
// A Rule is a named conjunction of threshold predicates over feature
// values, e.g.
//
//	jaccard_3gram_isbn <= 0.5 AND lev_pages <= 0.5
//
// and a RuleSet is a disjunction of rules. Rules are used two ways:
//
//   - as blocking rules: a pair is DROPPED when any rule fires (each rule
//     describes a provably-non-matching region), and
//   - as match rules: a pair is declared a match when any rule fires,
//     typically layered on top of an ML matcher's predictions.
package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a comparison operator of a predicate.
type Op int

// The supported comparison operators.
const (
	LE Op = iota // <=
	LT           // <
	GE           // >=
	GT           // >
	EQ           // ==
	NE           // !=
)

// String returns the operator's source form.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case LT:
		return "<"
	case GE:
		return ">="
	case GT:
		return ">"
	case EQ:
		return "=="
	case NE:
		return "!="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Apply evaluates "v op threshold".
func (o Op) Apply(v, threshold float64) bool {
	switch o {
	case LE:
		return v <= threshold
	case LT:
		return v < threshold
	case GE:
		return v >= threshold
	case GT:
		return v > threshold
	case EQ:
		return v == threshold
	case NE:
		return v != threshold
	default:
		return false
	}
}

// Predicate is one "feature op value" clause.
type Predicate struct {
	Feature string
	Op      Op
	Value   float64
}

// String renders the predicate in its source form.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Feature, p.Op, strconv.FormatFloat(p.Value, 'g', -1, 64))
}

// Rule is a named conjunction of predicates. An empty conjunction never
// fires (a rule that dropped every pair would be useless and dangerous).
type Rule struct {
	Name       string
	Predicates []Predicate
}

// String renders the rule as "p1 AND p2 AND ...".
func (r Rule) String() string {
	parts := make([]string, len(r.Predicates))
	for i, p := range r.Predicates {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// RuleSet is an ordered disjunction of rules.
type RuleSet struct {
	Rules []Rule
}

// Add appends a rule.
func (rs *RuleSet) Add(r Rule) { rs.Rules = append(rs.Rules, r) }

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.Rules) }

// CompiledRule evaluates a Rule against positional feature vectors without
// per-pair map lookups. Build one with Compile.
type CompiledRule struct {
	rule  Rule
	idx   []int
	ops   []Op
	value []float64
}

// Compile resolves the rule's feature names against the given feature-name
// order. It fails fast when a rule references an unknown feature — the
// self-containment principle: a rule must not silently evaluate to false
// because a feature went missing.
func Compile(r Rule, featureNames []string) (*CompiledRule, error) {
	pos := make(map[string]int, len(featureNames))
	for i, n := range featureNames {
		pos[n] = i
	}
	c := &CompiledRule{rule: r}
	for _, p := range r.Predicates {
		i, ok := pos[p.Feature]
		if !ok {
			return nil, fmt.Errorf("rules: rule %q references unknown feature %q", r.Name, p.Feature)
		}
		c.idx = append(c.idx, i)
		c.ops = append(c.ops, p.Op)
		c.value = append(c.value, p.Value)
	}
	return c, nil
}

// Rule returns the source rule.
func (c *CompiledRule) Rule() Rule { return c.rule }

// Fires reports whether every predicate holds on the feature vector x.
// An empty rule never fires.
func (c *CompiledRule) Fires(x []float64) bool {
	if len(c.idx) == 0 {
		return false
	}
	for k, i := range c.idx {
		if !c.ops[k].Apply(x[i], c.value[k]) {
			return false
		}
	}
	return true
}

// CompiledRuleSet evaluates a RuleSet positionally.
type CompiledRuleSet struct {
	rules []*CompiledRule
}

// CompileSet compiles every rule of the set.
func CompileSet(rs RuleSet, featureNames []string) (*CompiledRuleSet, error) {
	out := &CompiledRuleSet{}
	for _, r := range rs.Rules {
		c, err := Compile(r, featureNames)
		if err != nil {
			return nil, err
		}
		out.rules = append(out.rules, c)
	}
	return out, nil
}

// AnyFires reports whether any rule of the set fires on x, and which
// (first match); index is -1 when none fire.
func (c *CompiledRuleSet) AnyFires(x []float64) (fired bool, index int) {
	for i, r := range c.rules {
		if r.Fires(x) {
			return true, i
		}
	}
	return false, -1
}

// Len returns the number of compiled rules.
func (c *CompiledRuleSet) Len() int { return len(c.rules) }

// EvalMap evaluates the (uncompiled) rule against a feature map; features
// absent from the map fail the rule with an error, preserving the fail-fast
// contract of Compile for ad-hoc evaluation.
func (r Rule) EvalMap(fv map[string]float64) (bool, error) {
	if len(r.Predicates) == 0 {
		return false, nil
	}
	for _, p := range r.Predicates {
		v, ok := fv[p.Feature]
		if !ok {
			return false, fmt.Errorf("rules: rule %q: feature %q missing from vector", r.Name, p.Feature)
		}
		if !p.Op.Apply(v, p.Value) {
			return false, nil
		}
	}
	return true, nil
}
