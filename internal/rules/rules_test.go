package rules

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpApply(t *testing.T) {
	cases := []struct {
		op   Op
		v, w float64
		want bool
	}{
		{LE, 1, 1, true}, {LE, 1.1, 1, false},
		{LT, 0.9, 1, true}, {LT, 1, 1, false},
		{GE, 1, 1, true}, {GE, 0.9, 1, false},
		{GT, 1.1, 1, true}, {GT, 1, 1, false},
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 1, 1, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.v, c.w); got != c.want {
			t.Errorf("%v.Apply(%v,%v) = %v", c.op, c.v, c.w, got)
		}
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{LE: "<=", LT: "<", GE: ">=", GT: ">", EQ: "==", NE: "!="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestParseSimple(t *testing.T) {
	r, err := Parse("b1", "jaccard_3gram_name <= 0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Predicates) != 1 {
		t.Fatalf("predicates = %v", r.Predicates)
	}
	p := r.Predicates[0]
	if p.Feature != "jaccard_3gram_name" || p.Op != LE || p.Value != 0.3 {
		t.Errorf("predicate = %+v", p)
	}
}

func TestParseConjunction(t *testing.T) {
	r, err := Parse("b2", "isbn_exact <= 0.5 AND pages_lev < 0.5 and year_exact == 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Predicates) != 3 {
		t.Fatalf("predicates = %v", r.Predicates)
	}
	if r.Predicates[2].Op != EQ || r.Predicates[2].Value != 0 {
		t.Errorf("third predicate = %+v", r.Predicates[2])
	}
}

func TestParseNegativeAndScientific(t *testing.T) {
	r, err := Parse("n", "score > -1.5e-2")
	if err != nil {
		t.Fatal(err)
	}
	if r.Predicates[0].Value != -0.015 {
		t.Errorf("value = %v", r.Predicates[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"feature",
		"feature <=",
		"feature <= abc",
		"<= 0.5",
		"a <= 0.5 b <= 0.3",
		"a = 0.5",
		"a ? 0.5",
		"a <= 0.5 AND",
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSet(t *testing.T) {
	src := `
# blocking rules extracted from tree 0
isbn_exact <= 0.5
isbn_exact > 0.5 AND pages_lev <= 0.5

`
	rs, err := ParseSet("block", src)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("rules = %d", rs.Len())
	}
	if !strings.HasPrefix(rs.Rules[0].Name, "block#") {
		t.Errorf("rule name = %q", rs.Rules[0].Name)
	}
}

func TestParseSetError(t *testing.T) {
	if _, err := ParseSet("s", "good <= 1\nbad !! 2"); err == nil {
		t.Error("want parse error surfaced from set")
	}
}

func TestRoundTripString(t *testing.T) {
	r := MustParse("rt", "a <= 0.5 AND b > 0.25")
	again, err := Parse("rt", r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if len(again.Predicates) != 2 || again.Predicates[1].Value != 0.25 {
		t.Errorf("round trip mangled rule: %v", again)
	}
}

func TestCompileAndFire(t *testing.T) {
	names := []string{"f_a", "f_b", "f_c"}
	r := MustParse("r", "f_a <= 0.5 AND f_c > 0.9")
	c, err := Compile(r, names)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Fires([]float64{0.4, 0.0, 0.95}) {
		t.Error("rule should fire")
	}
	if c.Fires([]float64{0.6, 0.0, 0.95}) {
		t.Error("first predicate violated; rule must not fire")
	}
	if c.Fires([]float64{0.4, 0.0, 0.5}) {
		t.Error("second predicate violated; rule must not fire")
	}
	if c.Rule().Name != "r" {
		t.Error("source rule lost")
	}
}

func TestCompileUnknownFeature(t *testing.T) {
	r := MustParse("r", "missing <= 0.5")
	if _, err := Compile(r, []string{"present"}); err == nil {
		t.Fatal("want unknown-feature error")
	}
}

func TestEmptyRuleNeverFires(t *testing.T) {
	c, err := Compile(Rule{Name: "empty"}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fires([]float64{0}) {
		t.Error("empty rule fired")
	}
	ok, err := Rule{}.EvalMap(map[string]float64{})
	if err != nil || ok {
		t.Error("empty rule EvalMap should be false, nil")
	}
}

func TestCompileSetAnyFires(t *testing.T) {
	rs := RuleSet{}
	rs.Add(MustParse("r0", "a <= 0.1"))
	rs.Add(MustParse("r1", "b <= 0.1"))
	c, err := CompileSet(rs, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	fired, idx := c.AnyFires([]float64{0.5, 0.05})
	if !fired || idx != 1 {
		t.Errorf("AnyFires = %v, %d; want true, 1", fired, idx)
	}
	fired, idx = c.AnyFires([]float64{0.5, 0.5})
	if fired || idx != -1 {
		t.Errorf("AnyFires = %v, %d; want false, -1", fired, idx)
	}
	rs.Add(MustParse("r2", "nope <= 1"))
	if _, err := CompileSet(rs, []string{"a", "b"}); err == nil {
		t.Error("want compile error for unknown feature in set")
	}
}

func TestEvalMap(t *testing.T) {
	r := MustParse("r", "x > 0.5 AND y <= 0.2")
	ok, err := r.EvalMap(map[string]float64{"x": 0.9, "y": 0.1})
	if err != nil || !ok {
		t.Errorf("EvalMap = %v, %v", ok, err)
	}
	ok, err = r.EvalMap(map[string]float64{"x": 0.9, "y": 0.9})
	if err != nil || ok {
		t.Errorf("EvalMap = %v, %v", ok, err)
	}
	if _, err := r.EvalMap(map[string]float64{"x": 0.9}); err == nil {
		t.Error("want missing-feature error")
	}
}

// Property: compiled evaluation agrees with map evaluation.
func TestCompiledMatchesMapProperty(t *testing.T) {
	names := []string{"a", "b"}
	r := MustParse("p", "a <= 0.5 AND b > 0.3")
	c, err := Compile(r, names)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		viaSlice := c.Fires([]float64{a, b})
		viaMap, err := r.EvalMap(map[string]float64{"a": a, "b": b})
		return err == nil && viaSlice == viaMap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
