package obs

import "time"

// StartTimer begins timing a stage and returns the function that stops it,
// observing the elapsed seconds into the named histogram series:
//
//	defer obs.StartTimer(s.Metrics, "em_stage_seconds", obs.L("stage", "block"))()
//
// When the recorder is disabled (nil or Nop) no clock is read and a shared
// no-capture closure is returned, so the call is free on production paths
// that run without metrics.
//
//emlint:allow nondeterminism -- the obs timer is the sanctioned clock
func StartTimer(r Recorder, name string, labels ...Label) func() {
	if !Enabled(r) {
		return nopStop
	}
	start := time.Now()
	return func() { r.Observe(name, time.Since(start).Seconds(), labels...) }
}

// nopStop is the shared stop function of disabled timers.
func nopStop() {}

// Since observes the seconds elapsed since start into the named histogram
// series — the non-deferred form of StartTimer for code that already holds
// a start time. Disabled recorders ignore it without reading the clock.
//
//emlint:allow nondeterminism -- the obs timer is the sanctioned clock
func Since(r Recorder, name string, start time.Time, labels ...Label) {
	if !Enabled(r) {
		return
	}
	r.Observe(name, time.Since(start).Seconds(), labels...)
}
