package obs

// Canonical metric names. Instrumentation sites across the pipeline use
// these constants so dashboards, the /metrics exposition, and the
// -metrics JSON dumps agree on series identity. Label keys appear in the
// comments; keep label order fixed at call sites (series identity is the
// ordered label list).
const (
	// StageSeconds times one pipeline stage: labels {stage}. Stages are
	// the Figure-2 guide steps: downsample, try_blockers, block,
	// sample_label, feature, cv, train, predict.
	StageSeconds = "em_stage_seconds"

	// BlockSeconds times one whole Block call: labels {blocker}.
	BlockSeconds = "em_block_seconds"
	// BlockShardSeconds times one worker shard of a sharded blocker:
	// labels {blocker}.
	BlockShardSeconds = "em_block_shard_seconds"
	// BlockPairsEmitted counts candidate pairs a blocker emitted:
	// labels {blocker}.
	BlockPairsEmitted = "em_block_pairs_emitted_total"
	// BlockPairsConsidered counts pairs a blocker examined before
	// filtering (for cross-product blockers, |L|x|R|): labels {blocker}.
	BlockPairsConsidered = "em_block_pairs_considered_total"

	// CVFoldSeconds times one cross-validation fold: labels {matcher}.
	CVFoldSeconds = "em_cv_fold_seconds"
	// CVSeconds times one whole cross-validation run: labels {matcher}.
	CVSeconds = "em_cv_seconds"
	// ForestTreeFitSeconds times one tree fit inside RandomForest.Fit.
	ForestTreeFitSeconds = "em_forest_tree_fit_seconds"
	// ForestFitSeconds times one whole RandomForest.Fit call.
	ForestFitSeconds = "em_forest_fit_seconds"

	// SimjoinSeconds times one similarity join: labels {join}.
	SimjoinSeconds = "em_simjoin_seconds"
	// SimjoinCandidates counts prefix-filter candidates verified:
	// labels {join}.
	SimjoinCandidates = "em_simjoin_candidates_total"
	// SimjoinPairs counts pairs a join emitted: labels {join}.
	SimjoinPairs = "em_simjoin_pairs_total"

	// FeatureExtractSeconds times one feature.Vectors call.
	FeatureExtractSeconds = "em_feature_extract_seconds"
	// FeatureVectors counts feature vectors extracted.
	FeatureVectors = "em_feature_vectors_total"

	// ParallelSerialFallbacks counts fan-outs the parallel cost gate sent
	// down the serial path because the input was below its MinWork
	// threshold (parallel.Gate / ForEachMin / MapChunksMin).
	ParallelSerialFallbacks = "em_parallel_serial_fallbacks_total"

	// ServeIngestTotal counts corpus mutations: labels {op}
	// (add|update|delete).
	ServeIngestTotal = "em_serve_ingest_total"
	// ServeCorpusRecords gauges live records resident in a corpus.
	ServeCorpusRecords = "em_serve_corpus_records"
	// ServeCorpusTombstones gauges tombstoned slots awaiting compaction.
	ServeCorpusTombstones = "em_serve_corpus_tombstones"
	// ServeCompactionsTotal counts postings compaction passes.
	ServeCompactionsTotal = "em_serve_compactions_total"
	// ServeMatchSeconds times one whole MatchOne call.
	ServeMatchSeconds = "em_serve_match_seconds"
	// ServeStageSeconds times one MatchOne stage: labels {stage}
	// (candidates|features|score).
	ServeStageSeconds = "em_serve_stage_seconds"
	// ServeQueueDepth gauges match requests waiting in a pool queue.
	ServeQueueDepth = "em_serve_queue_depth"
	// ServeQueueWaitSeconds times one request's wait between Submit and
	// a worker picking it up.
	ServeQueueWaitSeconds = "em_serve_queue_wait_seconds"
	// ServeRequestsTotal counts settled match submissions:
	// labels {status} (ok|error|overloaded).
	ServeRequestsTotal = "em_serve_requests_total"

	// CloudQueueDepth gauges fragments waiting for an engine worker:
	// labels {engine}.
	CloudQueueDepth = "cloud_engine_queue_depth"
	// CloudStepsInFlight gauges fragments currently executing on an
	// engine: labels {engine}.
	CloudStepsInFlight = "cloud_engine_steps_in_flight"
	// CloudJobsInFlight gauges jobs between Submit entry and return.
	CloudJobsInFlight = "cloud_jobs_in_flight"
	// CloudJobsTotal counts finished jobs: labels {status} (ok|error).
	CloudJobsTotal = "cloud_jobs_total"
	// CloudStepSeconds times one executed DAG step: labels {service}.
	CloudStepSeconds = "cloud_step_seconds"
	// CloudStepsTotal counts settled DAG steps:
	// labels {service, status} (ok|error|skipped|cancelled).
	CloudStepsTotal = "cloud_steps_total"
)

// DescribeStandard attaches help text for every canonical metric name to
// the registry and pre-declares the cloud gauge families for the three
// engines, so a fresh /metrics page documents the full schema before any
// pipeline traffic arrives.
func DescribeStandard(g *Registry) {
	for _, d := range []struct{ name, help string }{
		{StageSeconds, "Duration of one EM pipeline stage (Figure-2 guide step)."},
		{BlockSeconds, "Duration of one blocker Block call."},
		{BlockShardSeconds, "Duration of one worker shard inside a sharded blocker."},
		{BlockPairsEmitted, "Candidate pairs emitted by a blocker."},
		{BlockPairsConsidered, "Pairs a blocker examined before filtering."},
		{CVFoldSeconds, "Duration of one cross-validation fold."},
		{CVSeconds, "Duration of one full cross-validation run."},
		{ForestTreeFitSeconds, "Duration of one tree fit inside RandomForest.Fit."},
		{ForestFitSeconds, "Duration of one RandomForest.Fit call."},
		{SimjoinSeconds, "Duration of one similarity join."},
		{SimjoinCandidates, "Prefix-filter candidates verified by a similarity join."},
		{SimjoinPairs, "Pairs emitted by a similarity join."},
		{FeatureExtractSeconds, "Duration of one feature-vector extraction pass."},
		{FeatureVectors, "Feature vectors extracted."},
		{ParallelSerialFallbacks, "Fan-outs the parallel cost gate kept serial (input below MinWork)."},
		{ServeIngestTotal, "Corpus mutations by op (add|update|delete)."},
		{ServeCorpusRecords, "Live records resident in a serving corpus."},
		{ServeCorpusTombstones, "Tombstoned corpus slots awaiting compaction."},
		{ServeCompactionsTotal, "Postings compaction passes."},
		{ServeMatchSeconds, "Duration of one MatchOne call."},
		{ServeStageSeconds, "Duration of one MatchOne stage (candidates|features|score)."},
		{ServeQueueDepth, "Match requests waiting in a serve pool queue."},
		{ServeQueueWaitSeconds, "Wait between pool Submit and worker pickup."},
		{ServeRequestsTotal, "Settled match submissions by status (ok|error|overloaded)."},
		{CloudQueueDepth, "Fragments waiting for an engine worker."},
		{CloudStepsInFlight, "Fragments currently executing on an engine."},
		{CloudJobsInFlight, "Jobs between Submit entry and return."},
		{CloudJobsTotal, "Finished jobs by status (ok|error)."},
		{CloudStepSeconds, "Duration of one executed DAG step."},
		{CloudStepsTotal, "Settled DAG steps by service and status."},
	} {
		g.Describe(d.name, d.help)
	}
	for _, engine := range []string{"batch", "user", "crowd"} {
		g.DeclareGauge(CloudQueueDepth, L("engine", engine))
		g.DeclareGauge(CloudStepsInFlight, L("engine", engine))
	}
	g.DeclareGauge(CloudJobsInFlight)
}
