package obs

import "testing"

// The no-op path is what every production run without -metrics pays; it
// must stay at effectively zero cost (no lock, no alloc, no clock read).

func BenchmarkNopCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Nop.Count(BlockPairsEmitted, 1, L("blocker", "hash"))
	}
}

func BenchmarkNopStartTimer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartTimer(Nop, StageSeconds, L("stage", "block"))()
	}
}

func BenchmarkRegistryCount(b *testing.B) {
	g := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Count(BlockPairsEmitted, 1, L("blocker", "hash"))
	}
}

func BenchmarkRegistryObserve(b *testing.B) {
	g := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Observe(StageSeconds, 0.001, L("stage", "block"))
	}
}
