// Package obs is the observability substrate of the reproduction: a
// lightweight metrics and stage-tracing layer every hot path reports into.
// It follows the convention of the Workers knob (DESIGN.md §5/§6): each
// instrumented type carries a `Metrics Recorder` field whose zero value
// (nil) means "off", resolved through Or to the no-op recorder. The no-op
// path never takes a lock, never allocates, and — via Timer/StartTimer —
// never reads the clock, so instrumentation can live permanently inside
// production code with zero measurable overhead when disabled
// (cmd/benchem -exp obsbench is the regression check).
//
// The live implementation is Registry: an in-memory store of counters,
// gauges, and duration histograms that renders itself in Prometheus text
// exposition format (served by cmd/cloudmatcher at GET /metrics) and as a
// JSON snapshot (dumped by the -metrics flag of cmd/pymatcher and
// cmd/benchem).
package obs

// Label is one name/value dimension of a metric series, e.g.
// {"stage", "block"}. Series identity is the metric name plus the ordered
// label list; instrumentation sites use a fixed label order so the same
// logical series never splits.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Recorder receives metric events. Implementations must be safe for
// concurrent use; hot paths call these methods from worker goroutines.
type Recorder interface {
	// Count adds delta (usually positive) to the named counter series.
	Count(name string, delta float64, labels ...Label)
	// Gauge adds delta to the named gauge series — the form queue depths
	// and in-flight counts use (+1 on entry, -1 on exit).
	Gauge(name string, delta float64, labels ...Label)
	// SetGauge overwrites the named gauge series.
	SetGauge(name string, value float64, labels ...Label)
	// Observe records one sample (for timers, in seconds) into the named
	// histogram series.
	Observe(name string, value float64, labels ...Label)
}

// nop is the do-nothing recorder. It is a comparable zero-size type so
// Timer can special-case it without an interface assertion.
type nop struct{}

func (nop) Count(string, float64, ...Label)    {}
func (nop) Gauge(string, float64, ...Label)    {}
func (nop) SetGauge(string, float64, ...Label) {}
func (nop) Observe(string, float64, ...Label)  {}

// Nop is the no-op recorder: the default sink of every instrumented path.
var Nop Recorder = nop{}

// Or resolves an optional recorder field: nil means Nop. Every
// instrumented type calls this once per operation instead of nil-checking
// at each event site.
func Or(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// Enabled reports whether r is a live recorder (non-nil and not Nop).
// Instrumentation guarding a clock read or an allocation checks this.
func Enabled(r Recorder) bool {
	if r == nil {
		return false
	}
	_, isNop := r.(nop)
	return !isNop
}
