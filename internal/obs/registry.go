package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// DefaultBuckets are the histogram upper bounds (seconds) Registry uses
// for Observe series: sub-millisecond shard timings up to minute-scale
// end-to-end workflow runs.
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry is the live Recorder: an in-memory metric store safe for
// concurrent use. It renders itself in Prometheus text exposition format
// (WritePrometheus) and as a JSON-friendly Snapshot. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	help     map[string]string
	counters map[string]*scalarSeries
	gauges   map[string]*scalarSeries
	hists    map[string]*histSeries
}

// scalarSeries is one counter or gauge time series.
type scalarSeries struct {
	name   string
	labels []Label
	value  float64
}

// histSeries is one histogram time series with cumulative buckets.
type histSeries struct {
	name     string
	labels   []Label
	counts   []uint64 // aligned with DefaultBuckets
	count    uint64
	sum      float64
	min, max float64
}

// NewRegistry returns an empty live recorder.
func NewRegistry() *Registry {
	return &Registry{
		help:     make(map[string]string),
		counters: make(map[string]*scalarSeries),
		gauges:   make(map[string]*scalarSeries),
		hists:    make(map[string]*histSeries),
	}
}

// Describe attaches a HELP string to a metric name for the Prometheus
// exposition. Calling it is optional.
func (g *Registry) Describe(name, help string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.help[name] = help
}

// seriesKey identifies a series by name and ordered labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

func (g *Registry) scalar(m map[string]*scalarSeries, name string, labels []Label) *scalarSeries {
	k := seriesKey(name, labels)
	s, ok := m[k]
	if !ok {
		s = &scalarSeries{name: name, labels: append([]Label(nil), labels...)}
		m[k] = s
	}
	return s
}

// Count implements Recorder.
func (g *Registry) Count(name string, delta float64, labels ...Label) {
	g.mu.Lock()
	g.scalar(g.counters, name, labels).value += delta
	g.mu.Unlock()
}

// Gauge implements Recorder.
func (g *Registry) Gauge(name string, delta float64, labels ...Label) {
	g.mu.Lock()
	g.scalar(g.gauges, name, labels).value += delta
	g.mu.Unlock()
}

// SetGauge implements Recorder.
func (g *Registry) SetGauge(name string, value float64, labels ...Label) {
	g.mu.Lock()
	g.scalar(g.gauges, name, labels).value = value
	g.mu.Unlock()
}

// Observe implements Recorder.
func (g *Registry) Observe(name string, value float64, labels ...Label) {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := seriesKey(name, labels)
	h, ok := g.hists[k]
	if !ok {
		h = &histSeries{
			name:   name,
			labels: append([]Label(nil), labels...),
			counts: make([]uint64, len(DefaultBuckets)),
		}
		g.hists[k] = h
	}
	for i, ub := range DefaultBuckets {
		if value <= ub {
			h.counts[i]++
		}
	}
	if h.count == 0 || value < h.min {
		h.min = value
	}
	if h.count == 0 || value > h.max {
		h.max = value
	}
	h.count++
	h.sum += value
}

// DeclareCounter ensures the counter series exists (at zero) so metric
// families appear in the exposition before any event fires — the
// cloudmatcher server declares its pipeline families at startup.
func (g *Registry) DeclareCounter(name string, labels ...Label) {
	g.mu.Lock()
	g.scalar(g.counters, name, labels)
	g.mu.Unlock()
}

// DeclareGauge ensures the gauge series exists (at zero).
func (g *Registry) DeclareGauge(name string, labels ...Label) {
	g.mu.Lock()
	g.scalar(g.gauges, name, labels)
	g.mu.Unlock()
}

// DeclareTimer ensures the histogram series exists (empty).
func (g *Registry) DeclareTimer(name string, labels ...Label) {
	g.mu.Lock()
	k := seriesKey(name, labels)
	if _, ok := g.hists[k]; !ok {
		g.hists[k] = &histSeries{
			name:   name,
			labels: append([]Label(nil), labels...),
			counts: make([]uint64, len(DefaultBuckets)),
		}
	}
	g.mu.Unlock()
}

// labelString renders {k="v",...}, with extra appended last (used for le).
// Go's %q escaping covers the Prometheus text-format rules (backslash,
// quote, newline).
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a float the way Prometheus expects (no exponent for
// integral values).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every series in Prometheus text exposition
// format, grouped by metric family in sorted order — the payload of
// GET /metrics.
func (g *Registry) WritePrometheus(w io.Writer) error {
	g.mu.Lock()
	defer g.mu.Unlock()

	writeFamily := func(kind string, series map[string]*scalarSeries) error {
		byName := make(map[string][]*scalarSeries)
		for _, s := range series {
			//emlint:allow maporder -- every byName bucket is sorted by label string (as ss) before emission
			byName[s.name] = append(byName[s.name], s)
		}
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if h := g.help[n]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, kind); err != nil {
				return err
			}
			ss := byName[n]
			sort.Slice(ss, func(a, b int) bool {
				return labelString(ss[a].labels) < labelString(ss[b].labels)
			})
			for _, s := range ss {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", n, labelString(s.labels), formatValue(s.value)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := writeFamily("counter", g.counters); err != nil {
		return err
	}
	if err := writeFamily("gauge", g.gauges); err != nil {
		return err
	}

	byName := make(map[string][]*histSeries)
	for _, h := range g.hists {
		//emlint:allow maporder -- every byName bucket is sorted by label string (as hs) before emission
		byName[h.name] = append(byName[h.name], h)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if h := g.help[n]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		hs := byName[n]
		sort.Slice(hs, func(a, b int) bool {
			return labelString(hs[a].labels) < labelString(hs[b].labels)
		})
		for _, h := range hs {
			for i, ub := range DefaultBuckets {
				le := L("le", formatValue(ub))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, labelString(h.labels, le), h.counts[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, labelString(h.labels, L("le", "+Inf")), h.count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", n, labelString(h.labels), h.sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", n, labelString(h.labels), h.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sample is one scalar series in a Snapshot.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// TimerSample is one histogram series in a Snapshot, summarized for
// human-readable JSON (the -metrics dumps).
type TimerSample struct {
	Name         string            `json:"name"`
	Labels       map[string]string `json:"labels,omitempty"`
	Count        uint64            `json:"count"`
	TotalSeconds float64           `json:"total_seconds"`
	MeanSeconds  float64           `json:"mean_seconds"`
	MinSeconds   float64           `json:"min_seconds"`
	MaxSeconds   float64           `json:"max_seconds"`
}

// Snapshot is the JSON form of a Registry's current state, with every
// slice sorted by (name, labels) so output is deterministic.
type Snapshot struct {
	Counters []Sample      `json:"counters,omitempty"`
	Gauges   []Sample      `json:"gauges,omitempty"`
	Timers   []TimerSample `json:"timers,omitempty"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures the registry's current state.
func (g *Registry) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	var snap Snapshot
	for _, s := range g.counters {
		snap.Counters = append(snap.Counters, Sample{Name: s.name, Labels: labelMap(s.labels), Value: s.value})
	}
	for _, s := range g.gauges {
		snap.Gauges = append(snap.Gauges, Sample{Name: s.name, Labels: labelMap(s.labels), Value: s.value})
	}
	for _, h := range g.hists {
		t := TimerSample{
			Name: h.name, Labels: labelMap(h.labels),
			Count: h.count, TotalSeconds: h.sum, MinSeconds: h.min, MaxSeconds: h.max,
		}
		if h.count > 0 {
			t.MeanSeconds = h.sum / float64(h.count)
		}
		snap.Timers = append(snap.Timers, t)
	}
	sortKey := func(name string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := name
		for _, k := range keys {
			s += "\x00" + k + "\x01" + labels[k]
		}
		return s
	}
	sort.Slice(snap.Counters, func(a, b int) bool {
		return sortKey(snap.Counters[a].Name, snap.Counters[a].Labels) < sortKey(snap.Counters[b].Name, snap.Counters[b].Labels)
	})
	sort.Slice(snap.Gauges, func(a, b int) bool {
		return sortKey(snap.Gauges[a].Name, snap.Gauges[a].Labels) < sortKey(snap.Gauges[b].Name, snap.Gauges[b].Labels)
	})
	sort.Slice(snap.Timers, func(a, b int) bool {
		return sortKey(snap.Timers[a].Name, snap.Timers[a].Labels) < sortKey(snap.Timers[b].Name, snap.Timers[b].Labels)
	})
	return snap
}

// CounterValue returns the current value of a counter series (0 if the
// series does not exist). Intended for tests and health reporting.
func (g *Registry) CounterValue(name string, labels ...Label) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.counters[seriesKey(name, labels)]; ok {
		return s.value
	}
	return 0
}

// GaugeValue returns the current value of a gauge series (0 if absent).
func (g *Registry) GaugeValue(name string, labels ...Label) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.gauges[seriesKey(name, labels)]; ok {
		return s.value
	}
	return 0
}

// TimerCount returns how many observations a histogram series has.
func (g *Registry) TimerCount(name string, labels ...Label) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if h, ok := g.hists[seriesKey(name, labels)]; ok {
		return h.count
	}
	return 0
}
