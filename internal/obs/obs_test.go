package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNopIsSafeAndDisabled(t *testing.T) {
	Nop.Count("c", 1)
	Nop.Gauge("g", 1)
	Nop.SetGauge("g", 2)
	Nop.Observe("h", 0.5)
	if Enabled(nil) || Enabled(Nop) {
		t.Error("nil/Nop must report disabled")
	}
	if Or(nil) != Nop {
		t.Error("Or(nil) != Nop")
	}
	r := NewRegistry()
	if Or(r) != Recorder(r) {
		t.Error("Or must pass live recorders through")
	}
	if !Enabled(r) {
		t.Error("live registry must report enabled")
	}
	// A disabled timer must be callable and record nothing anywhere.
	StartTimer(nil, "x")()
	StartTimer(Nop, "x")()
}

func TestRegistryCountersAndGauges(t *testing.T) {
	g := NewRegistry()
	g.Count("pairs_total", 3, L("blocker", "hash"))
	g.Count("pairs_total", 2, L("blocker", "hash"))
	g.Count("pairs_total", 7, L("blocker", "overlap"))
	if v := g.CounterValue("pairs_total", L("blocker", "hash")); v != 5 {
		t.Errorf("hash counter = %v, want 5", v)
	}
	if v := g.CounterValue("pairs_total", L("blocker", "overlap")); v != 7 {
		t.Errorf("overlap counter = %v, want 7", v)
	}
	if v := g.CounterValue("missing"); v != 0 {
		t.Errorf("missing counter = %v, want 0", v)
	}

	g.Gauge("depth", 2, L("engine", "batch"))
	g.Gauge("depth", -1, L("engine", "batch"))
	if v := g.GaugeValue("depth", L("engine", "batch")); v != 1 {
		t.Errorf("gauge = %v, want 1", v)
	}
	g.SetGauge("depth", 9, L("engine", "batch"))
	if v := g.GaugeValue("depth", L("engine", "batch")); v != 9 {
		t.Errorf("gauge after set = %v, want 9", v)
	}
}

func TestRegistryHistogram(t *testing.T) {
	g := NewRegistry()
	for _, v := range []float64{0.001, 0.003, 0.2, 40} {
		g.Observe("stage_seconds", v, L("stage", "block"))
	}
	if n := g.TimerCount("stage_seconds", L("stage", "block")); n != 4 {
		t.Fatalf("timer count = %d, want 4", n)
	}
	snap := g.Snapshot()
	if len(snap.Timers) != 1 {
		t.Fatalf("timers = %d, want 1", len(snap.Timers))
	}
	ts := snap.Timers[0]
	if ts.Count != 4 || ts.MinSeconds != 0.001 || ts.MaxSeconds != 40 {
		t.Errorf("timer sample = %+v", ts)
	}
	want := (0.001 + 0.003 + 0.2 + 40) / 4
	if diff := ts.MeanSeconds - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("mean = %v, want %v", ts.MeanSeconds, want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	g := NewRegistry()
	g.Describe("pairs_total", "candidate pairs emitted")
	g.Count("pairs_total", 5, L("blocker", `hash("x")`))
	g.SetGauge("queue_depth", 3, L("engine", "batch"))
	g.Observe("stage_seconds", 0.004, L("stage", "cv"))

	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP pairs_total candidate pairs emitted",
		"# TYPE pairs_total counter",
		`pairs_total{blocker="hash(\"x\")"} 5`,
		"# TYPE queue_depth gauge",
		`queue_depth{engine="batch"} 3`,
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="cv",le="0.005"} 1`,
		`stage_seconds_bucket{stage="cv",le="0.001"} 0`,
		`stage_seconds_bucket{stage="cv",le="+Inf"} 1`,
		`stage_seconds_sum{stage="cv"} 0.004`,
		`stage_seconds_count{stage="cv"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestDeclareExposesZeroSeries(t *testing.T) {
	g := NewRegistry()
	g.DeclareCounter(BlockPairsEmitted)
	g.DeclareGauge(CloudJobsInFlight)
	g.DeclareTimer(StageSeconds, L("stage", "block"))
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		BlockPairsEmitted + " 0",
		CloudJobsInFlight + " 0",
		StageSeconds + `_count{stage="block"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestSnapshotDeterministicAndJSON(t *testing.T) {
	build := func() Snapshot {
		g := NewRegistry()
		g.Count("b_total", 1, L("x", "2"))
		g.Count("a_total", 1)
		g.Count("b_total", 1, L("x", "1"))
		g.Observe("t_seconds", 0.5, L("stage", "z"))
		g.Observe("t_seconds", 0.25, L("stage", "a"))
		return g.Snapshot()
	}
	s1, s2 := build(), build()
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("snapshot not deterministic:\n%s\n%s", j1, j2)
	}
	if s1.Counters[0].Name != "a_total" {
		t.Errorf("counters not sorted: %+v", s1.Counters)
	}
	if s1.Timers[0].Labels["stage"] != "a" {
		t.Errorf("timers not sorted: %+v", s1.Timers)
	}
}

func TestStartTimerRecords(t *testing.T) {
	g := NewRegistry()
	stop := StartTimer(g, StageSeconds, L("stage", "block"))
	time.Sleep(time.Millisecond)
	stop()
	if n := g.TimerCount(StageSeconds, L("stage", "block")); n != 1 {
		t.Fatalf("timer count = %d, want 1", n)
	}
	snap := g.Snapshot()
	if snap.Timers[0].TotalSeconds <= 0 {
		t.Errorf("elapsed = %v, want > 0", snap.Timers[0].TotalSeconds)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	g := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Count("c_total", 1)
				g.Gauge("g", 1)
				g.Gauge("g", -1)
				g.Observe("h_seconds", 0.001)
			}
		}(w)
	}
	wg.Wait()
	if v := g.CounterValue("c_total"); v != 1600 {
		t.Errorf("counter = %v, want 1600", v)
	}
	if v := g.GaugeValue("g"); v != 0 {
		t.Errorf("gauge = %v, want 0", v)
	}
	if n := g.TimerCount("h_seconds"); n != 1600 {
		t.Errorf("timer count = %d, want 1600", n)
	}
}
