package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestWhitespace(t *testing.T) {
	got := Whitespace{}.Tokenize("  foo bar\tbaz  foo ")
	want := []string{"foo", "bar", "baz", "foo"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	got = Whitespace{ReturnSet: true}.Tokenize("foo bar foo")
	want = []string{"foo", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("set variant: got %v want %v", got, want)
	}
	if got := (Whitespace{}).Tokenize(""); len(got) != 0 {
		t.Errorf("empty input: got %v", got)
	}
}

func TestDelimiter(t *testing.T) {
	got := Delimiter{Delims: ",;"}.Tokenize("a, b;c,,d")
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	// Default delimiter is comma.
	got = Delimiter{}.Tokenize("x,y")
	if !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("default delim: got %v", got)
	}
	got = Delimiter{ReturnSet: true}.Tokenize("a,a,b")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("set variant: got %v", got)
	}
}

func TestAlphanumeric(t *testing.T) {
	got := Alphanumeric{}.Tokenize("Dave's Auto-Shop #42")
	want := []string{"dave", "s", "auto", "shop", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	got = Alphanumeric{ReturnSet: true}.Tokenize("a b a")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("set variant: got %v", got)
	}
}

func TestQGram(t *testing.T) {
	got := QGram{Q: 2}.Tokenize("abcd")
	want := []string{"ab", "bc", "cd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	// Padding adds boundary grams.
	got = QGram{Q: 2, Pad: true}.Tokenize("ab")
	want = []string{"#a", "ab", "b$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("padded: got %v want %v", got, want)
	}
	// Short strings yield a single token.
	got = QGram{Q: 3}.Tokenize("ab")
	if !reflect.DeepEqual(got, []string{"ab"}) {
		t.Errorf("short: got %v", got)
	}
	if got := (QGram{Q: 3}).Tokenize(""); got != nil {
		t.Errorf("empty: got %v", got)
	}
	// Q defaults to 3.
	if (QGram{}).Name() != "3gram" {
		t.Errorf("name = %q", QGram{}.Name())
	}
	got = QGram{}.Tokenize("abcd")
	if !reflect.DeepEqual(got, []string{"abc", "bcd"}) {
		t.Errorf("default q: got %v", got)
	}
	// Unicode safety: q-grams operate on runes.
	got = QGram{Q: 2}.Tokenize("héllo")
	if len(got) != 4 || got[0] != "hé" {
		t.Errorf("unicode grams: %v", got)
	}
}

func TestNames(t *testing.T) {
	cases := map[Tokenizer]string{
		Whitespace{}:   "ws",
		Delimiter{}:    "delim",
		Alphanumeric{}: "alnum",
		QGram{Q: 4}:    "4gram",
	}
	for tok, want := range cases {
		if tok.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", tok, tok.Name(), want)
		}
	}
}

func TestSortedSet(t *testing.T) {
	got := SortedSet(Whitespace{}, "b a b c")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

// Property: q-gram count equals max(1, runeLen - q + 1) for non-empty
// unpadded strings.
func TestQGramCountProperty(t *testing.T) {
	f := func(s string) bool {
		toks := QGram{Q: 3}.Tokenize(s)
		n := len([]rune(s))
		if n == 0 {
			return len(toks) == 0
		}
		want := n - 3 + 1
		if want < 1 {
			want = 1
		}
		return len(toks) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: set-variant tokenizers return no duplicates.
func TestSetVariantNoDuplicatesProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range []Tokenizer{
			Whitespace{ReturnSet: true},
			Alphanumeric{ReturnSet: true},
			QGram{Q: 2, ReturnSet: true},
		} {
			seen := map[string]bool{}
			for _, w := range tok.Tokenize(s) {
				if seen[w] {
					return false
				}
				seen[w] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing is deterministic.
func TestTokenizeDeterministicProperty(t *testing.T) {
	f := func(s string) bool {
		a := Alphanumeric{}.Tokenize(s)
		b := Alphanumeric{}.Tokenize(s)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDedupAliasesInput pins dedup's in-place contract: the result reuses
// the input's backing array, clobbering the caller's slice. Every caller in
// this package must therefore pass a freshly built slice it owns. If this
// test starts failing because dedup copies, the doc comment on dedup (and
// this test) can simply be deleted — but callers must never start passing
// borrowed slices while it holds.
func TestDedupAliasesInput(t *testing.T) {
	in := []string{"b", "a", "b", "c"}
	out := dedup(in)
	if want := []string{"b", "a", "c"}; !reflect.DeepEqual(out, want) {
		t.Fatalf("dedup = %v, want %v", out, want)
	}
	// Same backing array: the compaction overwrote in[2].
	if &in[0] != &out[0] {
		t.Fatal("dedup no longer aliases its input; update its doc contract")
	}
	if !reflect.DeepEqual(in, []string{"b", "a", "c", "c"}) {
		t.Fatalf("input after dedup = %v; expected in-place compaction", in)
	}
}

// TestTokenizersReturnFreshSlices: the public Tokenize methods must hand
// out slices the caller may mutate freely — dedup's aliasing is an internal
// affair and must never surface through the API (e.g. by a tokenizer
// deduping a slice it doesn't own).
func TestTokenizersReturnFreshSlices(t *testing.T) {
	s := "foo bar foo baz"
	for _, tok := range []Tokenizer{
		Whitespace{ReturnSet: true},
		Delimiter{Delims: " ", ReturnSet: true},
		Alphanumeric{ReturnSet: true},
		QGram{Q: 2, ReturnSet: true},
	} {
		a := tok.Tokenize(s)
		b := tok.Tokenize(s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: non-deterministic tokenization", tok.Name())
		}
		if len(a) == 0 {
			continue
		}
		a[0] = "mutated"
		if reflect.DeepEqual(a, b) || b[0] == "mutated" {
			t.Fatalf("%s: Tokenize results share a backing array", tok.Name())
		}
	}
}
