package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestWhitespace(t *testing.T) {
	got := Whitespace{}.Tokenize("  foo bar\tbaz  foo ")
	want := []string{"foo", "bar", "baz", "foo"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	got = Whitespace{ReturnSet: true}.Tokenize("foo bar foo")
	want = []string{"foo", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("set variant: got %v want %v", got, want)
	}
	if got := (Whitespace{}).Tokenize(""); len(got) != 0 {
		t.Errorf("empty input: got %v", got)
	}
}

func TestDelimiter(t *testing.T) {
	got := Delimiter{Delims: ",;"}.Tokenize("a, b;c,,d")
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	// Default delimiter is comma.
	got = Delimiter{}.Tokenize("x,y")
	if !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("default delim: got %v", got)
	}
	got = Delimiter{ReturnSet: true}.Tokenize("a,a,b")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("set variant: got %v", got)
	}
}

func TestAlphanumeric(t *testing.T) {
	got := Alphanumeric{}.Tokenize("Dave's Auto-Shop #42")
	want := []string{"dave", "s", "auto", "shop", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	got = Alphanumeric{ReturnSet: true}.Tokenize("a b a")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("set variant: got %v", got)
	}
}

func TestQGram(t *testing.T) {
	got := QGram{Q: 2}.Tokenize("abcd")
	want := []string{"ab", "bc", "cd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	// Padding adds boundary grams.
	got = QGram{Q: 2, Pad: true}.Tokenize("ab")
	want = []string{"#a", "ab", "b$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("padded: got %v want %v", got, want)
	}
	// Short strings yield a single token.
	got = QGram{Q: 3}.Tokenize("ab")
	if !reflect.DeepEqual(got, []string{"ab"}) {
		t.Errorf("short: got %v", got)
	}
	if got := (QGram{Q: 3}).Tokenize(""); got != nil {
		t.Errorf("empty: got %v", got)
	}
	// Q defaults to 3.
	if (QGram{}).Name() != "3gram" {
		t.Errorf("name = %q", QGram{}.Name())
	}
	got = QGram{}.Tokenize("abcd")
	if !reflect.DeepEqual(got, []string{"abc", "bcd"}) {
		t.Errorf("default q: got %v", got)
	}
	// Unicode safety: q-grams operate on runes.
	got = QGram{Q: 2}.Tokenize("héllo")
	if len(got) != 4 || got[0] != "hé" {
		t.Errorf("unicode grams: %v", got)
	}
}

func TestNames(t *testing.T) {
	cases := map[Tokenizer]string{
		Whitespace{}:   "ws",
		Delimiter{}:    "delim",
		Alphanumeric{}: "alnum",
		QGram{Q: 4}:    "4gram",
	}
	for tok, want := range cases {
		if tok.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", tok, tok.Name(), want)
		}
	}
}

func TestSortedSet(t *testing.T) {
	got := SortedSet(Whitespace{}, "b a b c")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

// Property: q-gram count equals max(1, runeLen - q + 1) for non-empty
// unpadded strings.
func TestQGramCountProperty(t *testing.T) {
	f := func(s string) bool {
		toks := QGram{Q: 3}.Tokenize(s)
		n := len([]rune(s))
		if n == 0 {
			return len(toks) == 0
		}
		want := n - 3 + 1
		if want < 1 {
			want = 1
		}
		return len(toks) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: set-variant tokenizers return no duplicates.
func TestSetVariantNoDuplicatesProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range []Tokenizer{
			Whitespace{ReturnSet: true},
			Alphanumeric{ReturnSet: true},
			QGram{Q: 2, ReturnSet: true},
		} {
			seen := map[string]bool{}
			for _, w := range tok.Tokenize(s) {
				if seen[w] {
					return false
				}
				seen[w] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing is deterministic.
func TestTokenizeDeterministicProperty(t *testing.T) {
	f := func(s string) bool {
		a := Alphanumeric{}.Tokenize(s)
		b := Alphanumeric{}.Tokenize(s)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
