// Package tokenize implements the string tokenizers of the Magellan
// ecosystem's py_stringmatching package: whitespace, delimiter,
// alphanumeric, and q-gram tokenizers, each in set and bag (multiset)
// variants. Tokenizers feed both the similarity measures of package sim and
// the set-similarity joins of package simjoin.
package tokenize

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenizer splits a string into tokens. Implementations must be
// deterministic and safe for concurrent use.
type Tokenizer interface {
	// Tokenize returns the tokens of s in order of appearance. When the
	// tokenizer is set-semantic (returnSet), duplicates are removed while
	// preserving first-occurrence order.
	Tokenize(s string) []string
	// Name returns a short stable identifier such as "3gram" or "ws",
	// used when naming generated features (e.g. jaccard_3gram_name).
	Name() string
}

// dedup removes duplicate tokens preserving first-occurrence order.
//
// It compacts IN PLACE: the returned slice aliases toks's backing array
// (out := toks[:0]), so the caller's slice is clobbered up to the number of
// distinct tokens. That is safe — and allocation-free — precisely because
// every caller in this package passes a slice it just built and owns
// (strings.Fields output, a fresh append-loop, or Tokenize's result inside
// SortedSet) and never reads toks afterwards. Do not call it on a slice a
// caller handed in or that anything else retains; pass a copy instead.
// TestDedupAliasesInput pins this contract.
func dedup(toks []string) []string {
	seen := make(map[string]bool, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Whitespace tokenizes on Unicode whitespace.
type Whitespace struct {
	// ReturnSet removes duplicate tokens when true.
	ReturnSet bool
}

// Tokenize implements Tokenizer.
func (w Whitespace) Tokenize(s string) []string {
	toks := strings.Fields(s)
	if w.ReturnSet {
		toks = dedup(toks)
	}
	return toks
}

// Name implements Tokenizer.
func (w Whitespace) Name() string { return "ws" }

// Delimiter tokenizes on any of a set of delimiter runes.
type Delimiter struct {
	Delims    string // each rune is a delimiter; empty means ","
	ReturnSet bool
}

// Tokenize implements Tokenizer.
func (d Delimiter) Tokenize(s string) []string {
	delims := d.Delims
	if delims == "" {
		delims = ","
	}
	raw := strings.FieldsFunc(s, func(r rune) bool { return strings.ContainsRune(delims, r) })
	toks := make([]string, 0, len(raw))
	for _, t := range raw {
		t = strings.TrimSpace(t)
		if t != "" {
			toks = append(toks, t)
		}
	}
	if d.ReturnSet {
		toks = dedup(toks)
	}
	return toks
}

// Name implements Tokenizer.
func (d Delimiter) Name() string { return "delim" }

// Alphanumeric tokenizes into maximal runs of letters and digits,
// lower-casing each token. This is the tokenizer the down-sampler and the
// overlap blocker default to.
type Alphanumeric struct {
	ReturnSet bool
}

// Tokenize implements Tokenizer.
func (a Alphanumeric) Tokenize(s string) []string {
	s = strings.ToLower(s)
	var toks []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			toks = append(toks, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, s[start:])
	}
	if a.ReturnSet {
		toks = dedup(toks)
	}
	return toks
}

// Name implements Tokenizer.
func (a Alphanumeric) Name() string { return "alnum" }

// QGram produces overlapping character q-grams. With Pad, the string is
// padded with q-1 '#' prefix and '$' suffix characters so boundary
// characters appear in q grams, matching py_stringmatching's default.
type QGram struct {
	Q         int // gram size; values < 1 are treated as 3
	Pad       bool
	ReturnSet bool
}

// Tokenize implements Tokenizer.
func (g QGram) Tokenize(s string) []string {
	q := g.Q
	if q < 1 {
		q = 3
	}
	if g.Pad {
		s = strings.Repeat("#", q-1) + s + strings.Repeat("$", q-1)
	}
	runes := []rune(s)
	if len(runes) < q {
		if len(runes) == 0 {
			return nil
		}
		return []string{string(runes)}
	}
	toks := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		toks = append(toks, string(runes[i:i+q]))
	}
	if g.ReturnSet {
		toks = dedup(toks)
	}
	return toks
}

// Name implements Tokenizer.
func (g QGram) Name() string {
	q := g.Q
	if q < 1 {
		q = 3
	}
	return itoa(q) + "gram"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// SortedSet tokenizes with the wrapped tokenizer, dedups, and sorts: the
// canonical form used to build prefix-filter indexes in package simjoin.
func SortedSet(t Tokenizer, s string) []string {
	toks := dedup(t.Tokenize(s))
	sort.Strings(toks)
	return toks
}
