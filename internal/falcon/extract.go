// Package falcon implements the Falcon self-service EM workflow of the
// paper (Das et al., SIGMOD 2017; Figures 3 and 4 of the Magellan progress
// report). A lay user only labels tuple pairs as match/no-match; Falcon
//
//  1. takes a sample S of tuple pairs,
//  2. active-learns a random forest F on S,
//  3. extracts every root→"No"-leaf branch of every tree of F as a
//     candidate blocking rule,
//  4. keeps only the rules the labeler confirms precise,
//  5. executes the precise rules to block A × B into a candidate set C,
//  6. active-learns a second forest G on C and applies it to C to predict
//     matches.
//
// This package is the core of the CloudMatcher reproduction: package cloud
// exposes each of these steps as a service.
package falcon

import (
	"fmt"
	"strings"

	"repro/internal/ml"
	"repro/internal/rules"
)

// ExtractBlockingRules walks every tree of the forest and returns one rule
// per root→leaf branch ending in a "No" (non-match-majority) leaf, as in
// Figure 4 of the paper: the tree "name_match <= 0.5? → No" yields the
// blocking rule "name_match <= 0.5". Identical rules from different trees
// are deduplicated; rules are named falcon_rule_<i>.
func ExtractBlockingRules(f *ml.RandomForest, featureNames []string) (rules.RuleSet, error) {
	if len(f.Trees()) == 0 {
		return rules.RuleSet{}, fmt.Errorf("falcon: forest has no trees (not fitted?)")
	}
	var rs rules.RuleSet
	seen := make(map[string]bool)
	for _, t := range f.Trees() {
		for _, branch := range noBranches(t.Root(), nil) {
			r := rules.Rule{Predicates: branch}
			key := r.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			rs.Add(r)
		}
	}
	// Name rules and resolve feature indices outside the per-branch loop;
	// the index at add time equals the slice index, so names are unchanged.
	for i := range rs.Rules {
		rs.Rules[i].Name = fmt.Sprintf("falcon_rule_%d", i)
		for j := range rs.Rules[i].Predicates {
			p := &rs.Rules[i].Predicates[j]
			idx, err := parseFeatureIndex(p.Feature)
			if err != nil {
				return rules.RuleSet{}, err
			}
			if idx < 0 || idx >= len(featureNames) {
				return rules.RuleSet{}, fmt.Errorf("falcon: tree references feature %d, have %d features", idx, len(featureNames))
			}
			p.Feature = featureNames[idx]
		}
	}
	return rs, nil
}

// noBranches enumerates the predicate paths from n to every "No" leaf.
// Internal nodes encode features positionally as "#<index>"; the caller
// rewrites them to names.
func noBranches(n *ml.TreeNode, path []rules.Predicate) [][]rules.Predicate {
	if n == nil {
		return nil
	}
	if n.Leaf {
		if n.Proba < 0.5 && len(path) > 0 {
			return [][]rules.Predicate{append([]rules.Predicate(nil), path...)}
		}
		return nil
	}
	feat := fmt.Sprintf("#%d", n.Feature)
	var out [][]rules.Predicate
	out = append(out, noBranches(n.Left, append(path, rules.Predicate{Feature: feat, Op: rules.LE, Value: n.Threshold}))...)
	out = append(out, noBranches(n.Right, append(path, rules.Predicate{Feature: feat, Op: rules.GT, Value: n.Threshold}))...)
	return out
}

func parseFeatureIndex(s string) (int, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("falcon: internal: feature %q is not positional", s)
	}
	var idx int
	if _, err := fmt.Sscanf(s[1:], "%d", &idx); err != nil {
		return 0, fmt.Errorf("falcon: internal: bad feature index %q: %w", s, err)
	}
	return idx, nil
}
