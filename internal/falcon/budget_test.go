package falcon

import (
	"testing"

	"repro/internal/active"
)

func maxQuestions(cfg active.Config) int {
	seed := cfg.SeedSize
	if seed <= 0 {
		seed = 20
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 10
	}
	rounds := cfg.MaxRounds
	if rounds <= 0 {
		rounds = 20
	}
	return seed + rounds*batch
}

func TestFitBudgetWithinBounds(t *testing.T) {
	for _, q := range []int{10, 40, 100, 500, 2000} {
		got := fitBudget(active.Config{}, q)
		// Worst case must not exceed the budget by more than one batch
		// (the loop checks the budget between batches).
		if mx := maxQuestions(got); mx > q+got.BatchSize {
			t.Errorf("budget %d: worst case %d questions (cfg %+v)", q, mx, got)
		}
		if got.MaxRounds < 1 {
			t.Errorf("budget %d: rounds = %d, must leave at least one", q, got.MaxRounds)
		}
		if got.SeedSize < 1 {
			t.Errorf("budget %d: seed = %d", q, got.SeedSize)
		}
	}
}

func TestFitBudgetRespectsExplicitRounds(t *testing.T) {
	got := fitBudget(active.Config{MaxRounds: 3, SeedSize: 10, BatchSize: 5}, 1000)
	if got.MaxRounds != 3 {
		t.Errorf("explicit MaxRounds overridden: %d", got.MaxRounds)
	}
	if got.SeedSize != 10 || got.BatchSize != 5 {
		t.Errorf("explicit sizes changed: %+v", got)
	}
}

func TestFitBudgetTinyBudget(t *testing.T) {
	got := fitBudget(active.Config{}, 4)
	if got.SeedSize > 2 {
		t.Errorf("seed %d exceeds half of a 4-question budget", got.SeedSize)
	}
}
