package falcon

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/active"
	"repro/internal/block"
	"repro/internal/feature"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/simjoin"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// Config tunes a Falcon run.
type Config struct {
	// SampleSize is |S|, the tuple-pair sample active-learned for
	// blocking rules; 0 means 2000.
	SampleSize int
	// Blocking configures stage-1 active learning.
	Blocking active.Config
	// Matching configures stage-2 active learning.
	Matching active.Config
	// RulePrecision is the minimum labeled precision for a blocking rule
	// to be retained; 0 means 0.95.
	RulePrecision float64
	// RuleEvalSamples is the number of firing pairs labeled per rule
	// during rule evaluation; 0 means 20.
	RuleEvalSamples int
	// MinRuleCoverage rejects rules firing on fewer sample pairs than
	// this (a rule that drops almost nothing is useless); 0 means 10.
	MinRuleCoverage int
	// MaxRules caps how many precise rules are kept (highest coverage
	// first); 0 means 10.
	MaxRules int
	// SeedOverlap is the whole-tuple token-overlap count seeding the
	// candidate set; 0 means 1.
	SeedOverlap int
	// Seed drives all randomness.
	Seed int64
}

func (c Config) sampleSize() int {
	if c.SampleSize <= 0 {
		return 2000
	}
	return c.SampleSize
}

func (c Config) rulePrecision() float64 {
	if c.RulePrecision <= 0 {
		return 0.95
	}
	return c.RulePrecision
}

func (c Config) ruleEvalSamples() int {
	if c.RuleEvalSamples <= 0 {
		return 20
	}
	return c.RuleEvalSamples
}

func (c Config) minRuleCoverage() int {
	if c.MinRuleCoverage <= 0 {
		return 10
	}
	return c.MinRuleCoverage
}

func (c Config) maxRules() int {
	if c.MaxRules <= 0 {
		return 10
	}
	return c.MaxRules
}

// Result is the outcome of a Falcon run.
type Result struct {
	// Features is the auto-generated feature set both stages share.
	Features *feature.Set
	// CandidateRules is every rule extracted from the stage-1 forest.
	CandidateRules rules.RuleSet
	// BlockingRules is the subset confirmed precise and used to block.
	BlockingRules rules.RuleSet
	// Candidates is the blocked candidate set C.
	Candidates *table.Table
	// Matches is the pair table of predicted matches.
	Matches *table.Table
	// Matcher is the stage-2 forest applied to C.
	Matcher *ml.RandomForest
	// BlockingQuestions and MatchingQuestions count labels per stage.
	BlockingQuestions int
	MatchingQuestions int
	// RuleQuestions counts labels spent validating rules.
	RuleQuestions int
	// MachineTime is the wall-clock compute time (excludes simulated
	// labeling latency).
	MachineTime time.Duration
}

// TotalQuestions returns the questions across all stages.
func (r *Result) TotalQuestions() int {
	return r.BlockingQuestions + r.MatchingQuestions + r.RuleQuestions
}

// Run executes the end-to-end Falcon workflow on tables a and b with the
// given labeler. The catalog receives the intermediate pair tables.
//
//emlint:allow nondeterminism -- MachineTime is a reported duration, not a decision input
func Run(a, b *table.Table, lab label.Labeler, cat *table.Catalog, cfg Config) (*Result, error) {
	start := time.Now()
	fs, err := feature.AutoGenerate(a, b)
	if err != nil {
		return nil, fmt.Errorf("falcon: %w", err)
	}
	res := &Result{Features: fs}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Step 1: sample S of tuple pairs. Half random cross pairs (so rules
	// see easy negatives), half token-overlapping pairs (so the sample
	// contains plausible matches to anchor the forest).
	sample, err := samplePairs(a, b, cat, cfg.sampleSize(), rng)
	if err != nil {
		return nil, err
	}
	sx, err := feature.Vectors(fs, sample, cat, feature.ExtractOptions{})
	if err != nil {
		return nil, err
	}
	pool := poolFromPairs(sample, sx, fs.Names())

	// Step 2: active-learn the blocking forest on S. When the labeler is
	// budgeted (CloudMatcher caps questions per task, Table 2), allocate
	// roughly 40% of the remaining budget to this stage, 20% to rule
	// evaluation, and the rest to the matching stage, so a tight cap
	// still leaves the matcher labeled examples to learn from.
	budget, budgeted := lab.(*label.Budgeted)
	before := lab.Stats().Questions
	bcfg := cfg.Blocking
	if bcfg.Seed == 0 {
		bcfg.Seed = cfg.Seed + 1
	}
	if budgeted {
		bcfg = fitBudget(bcfg, budget.Remaining()*2/5)
	}
	stage1, err := active.Learn(pool, lab, bcfg)
	if err != nil {
		return nil, fmt.Errorf("falcon: blocking stage: %w", err)
	}
	res.BlockingQuestions = lab.Stats().Questions - before

	// Step 3: extract candidate blocking rules from the forest.
	cand, err := ExtractBlockingRules(stage1.Forest, fs.Names())
	if err != nil {
		return nil, err
	}
	res.CandidateRules = cand

	// Step 4: evaluate rules with the labeler; retain precise ones.
	before = lab.Stats().Questions
	ruleBudget := 1 << 30
	if budgeted {
		ruleBudget = budget.Remaining() / 3
	}
	res.BlockingRules = evaluateRules(cand, pool, stage1, lab, rng, cfg, ruleBudget)
	res.RuleQuestions = lab.Stats().Questions - before

	// Step 5: execute the rules to produce the candidate set C.
	seed := block.WholeTupleOverlapBlocker{MinOverlap: cfg.SeedOverlap}
	var c *table.Table
	if res.BlockingRules.Len() > 0 {
		c, err = block.RuleBlocker{Seed: seed, Rules: res.BlockingRules, Features: fs}.Block(a, b, cat)
	} else {
		// No precise rules survived: fall back to a tightened seed
		// blocker (k+1 shared tokens) so the candidate set stays
		// tractable without rule pruning.
		tightened := seed
		tightened.MinOverlap = seed.MinOverlap + 1
		if tightened.MinOverlap < 2 {
			tightened.MinOverlap = 2
		}
		c, err = tightened.Block(a, b, cat)
	}
	if err != nil {
		return nil, fmt.Errorf("falcon: blocking: %w", err)
	}
	res.Candidates = c

	// Step 6: active-learn the matcher on C and predict.
	cx, err := feature.Vectors(fs, c, cat, feature.ExtractOptions{})
	if err != nil {
		return nil, err
	}
	cpool := poolFromPairs(c, cx, fs.Names())
	before = lab.Stats().Questions
	mcfg := cfg.Matching
	if mcfg.Seed == 0 {
		mcfg.Seed = cfg.Seed + 2
	}
	if budgeted {
		mcfg = fitBudget(mcfg, budget.Remaining())
	}
	stage2, err := active.Learn(cpool, lab, mcfg)
	if err != nil {
		return nil, fmt.Errorf("falcon: matching stage: %w", err)
	}
	res.MatchingQuestions = lab.Stats().Questions - before
	res.Matcher = stage2.Forest

	matches, err := table.NewPairTable("falcon_matches", a, b, cat)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.Len(); i++ {
		if ml.Predict(stage2.Forest, cx[i]) == 1 {
			table.AppendPair(matches, c.Get(i, "ltable_id").AsString(), c.Get(i, "rtable_id").AsString())
		}
	}
	res.Matches = matches
	res.MachineTime = time.Since(start)
	return res, nil
}

// samplePairs builds the stage-1 sample S. A uniform sample of A×B — or
// even of all token-overlapping pairs — contains essentially no matches,
// which would leave active learning and rule evaluation blind to what a
// match looks like. Like Falcon's sampler, we bias: a quarter of S are the
// pairs sharing the MOST whole-tuple tokens (likely matches), a quarter
// are random overlapping pairs (hard negatives), and the rest are random
// cross pairs (easy negatives).
func samplePairs(a, b *table.Table, cat *table.Catalog, n int, rng *rand.Rand) (*table.Table, error) {
	if a.Len() == 0 || b.Len() == 0 {
		return nil, fmt.Errorf("falcon: empty input table")
	}
	sample, err := table.NewPairTable("falcon_sample", a, b, cat)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]string]bool)
	add := func(lid, rid string) {
		k := [2]string{lid, rid}
		if !seen[k] {
			seen[k] = true
			table.AppendPair(sample, lid, rid)
		}
	}

	joined, err := simjoin.OverlapJoin(wholeTupleRecords(a), wholeTupleRecords(b), 1)
	if err != nil {
		return nil, err
	}
	// Highest shared-token pairs first.
	sort.Slice(joined, func(x, y int) bool {
		if joined[x].Sim != joined[y].Sim {
			return joined[x].Sim > joined[y].Sim
		}
		if joined[x].LID != joined[y].LID {
			return joined[x].LID < joined[y].LID
		}
		return joined[x].RID < joined[y].RID
	})
	top := n / 4
	if top > len(joined) {
		top = len(joined)
	}
	for _, p := range joined[:top] {
		add(p.LID, p.RID)
	}
	rest := joined[top:]
	rng.Shuffle(len(rest), func(x, y int) { rest[x], rest[y] = rest[y], rest[x] })
	want := n / 4
	if want > len(rest) {
		want = len(rest)
	}
	for _, p := range rest[:want] {
		add(p.LID, p.RID)
	}

	// Random remainder (also tops up if the overlap halves fell short).
	lkey := a.Schema().Lookup(a.Key())
	rkey := b.Schema().Lookup(b.Key())
	maxAttempts := 20 * n
	for attempt := 0; sample.Len() < n && attempt < maxAttempts; attempt++ {
		i := rng.Intn(a.Len())
		j := rng.Intn(b.Len())
		add(a.Row(i)[lkey].AsString(), b.Row(j)[rkey].AsString())
	}
	return sample, nil
}

// wholeTupleRecords tokenizes the concatenation of every row's non-key
// string attributes for the sampler's overlap join.
func wholeTupleRecords(t *table.Table) []simjoin.Record {
	tok := tokenize.Alphanumeric{ReturnSet: true}
	kj := t.Schema().Lookup(t.Key())
	out := make([]simjoin.Record, t.Len())
	var sb strings.Builder
	for i := 0; i < t.Len(); i++ {
		sb.Reset()
		for j := 0; j < t.Schema().Len(); j++ {
			if j == kj {
				continue
			}
			v := t.Row(i)[j]
			if v.IsNull() {
				continue
			}
			sb.WriteString(v.AsString())
			sb.WriteByte(' ')
		}
		out[i] = simjoin.Record{ID: t.Row(i)[kj].AsString(), Tokens: tok.Tokenize(sb.String())}
	}
	return out
}

// sortByVoteDesc orders pool indices by the forest's match-vote fraction,
// highest first, with index order as the tiebreak.
func sortByVoteDesc(idxs []int, pool *active.Pool, forest *ml.RandomForest) {
	votes := make(map[int]float64, len(idxs))
	for _, i := range idxs {
		votes[i] = forest.VoteFraction(pool.X[i])
	}
	sort.Slice(idxs, func(a, b int) bool {
		if votes[idxs[a]] != votes[idxs[b]] {
			return votes[idxs[a]] > votes[idxs[b]]
		}
		return idxs[a] < idxs[b]
	})
}

// fitBudget shrinks an active-learning config so its worst-case question
// count (seed + rounds*batch) fits within q.
func fitBudget(cfg active.Config, q int) active.Config {
	seed := cfg.SeedSize
	if seed <= 0 {
		seed = 20
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 10
	}
	if seed > q/2 && q >= 2 {
		seed = q / 2
	}
	rounds := (q - seed) / batch
	if rounds < 1 {
		rounds = 1
	}
	if cfg.MaxRounds > 0 && cfg.MaxRounds < rounds {
		rounds = cfg.MaxRounds
	}
	cfg.SeedSize = seed
	cfg.BatchSize = batch
	cfg.MaxRounds = rounds
	return cfg
}

func poolFromPairs(pairs *table.Table, x [][]float64, names []string) *active.Pool {
	pool := &active.Pool{X: x, Names: names}
	for i := 0; i < pairs.Len(); i++ {
		pool.LIDs = append(pool.LIDs, pairs.Get(i, "ltable_id").AsString())
		pool.RIDs = append(pool.RIDs, pairs.Get(i, "rtable_id").AsString())
	}
	return pool
}

// evaluateRules estimates each candidate rule's precision by labeling a
// sample of the pool pairs it fires on, keeping rules whose labeled
// precision (fraction of fired pairs that are true non-matches) clears the
// threshold. Sampling uniformly from the fired pairs would almost never
// surface a true match (EM pools are overwhelmingly non-matches), letting
// overly aggressive rules slip through; half the evaluation sample is
// therefore taken from the fired pairs the stage-1 forest scores highest —
// the region where a bad rule does its damage. Surviving rules are ranked
// by coverage and capped at MaxRules.
func evaluateRules(cand rules.RuleSet, pool *active.Pool, stage1 *active.Result, lab label.Labeler, rng *rand.Rand, cfg Config, questionBudget int) rules.RuleSet {
	forest := stage1.Forest
	// Feature vectors of pairs already labeled as matches in stage 1: a
	// rule firing on any of them is directly observed to destroy recall
	// and is rejected without spending more questions.
	var knownMatches [][]float64
	for i, y := range stage1.Labeled.Y {
		if y == 1 {
			knownMatches = append(knownMatches, stage1.Labeled.X[i])
		}
	}
	type scored struct {
		rule     rules.Rule
		coverage int
	}
	var kept []scored
	labelCache := make(map[[2]string]bool)
	asked := 0
	ask := func(i int) bool {
		k := [2]string{pool.LIDs[i], pool.RIDs[i]}
		if v, ok := labelCache[k]; ok {
			return v
		}
		asked++
		v := lab.Label(pool.LIDs[i], pool.RIDs[i])
		labelCache[k] = v
		return v
	}
	for _, r := range cand.Rules {
		if asked >= questionBudget {
			break // out of labeling budget for rule validation
		}
		c, err := rules.Compile(r, pool.Names)
		if err != nil {
			continue
		}
		fired := make([]int, 0, len(pool.X))
		for i := range pool.X {
			if c.Fires(pool.X[i]) {
				fired = append(fired, i)
			}
		}
		if len(fired) < cfg.minRuleCoverage() {
			continue
		}
		firesOnMatch := false
		for _, x := range knownMatches {
			if c.Fires(x) {
				firesOnMatch = true
				break
			}
		}
		if firesOnMatch {
			continue
		}
		sampleN := cfg.ruleEvalSamples()
		if sampleN > len(fired) {
			sampleN = len(fired)
		}
		// Adversarial half: fired pairs with the highest forest vote.
		byVote := append([]int(nil), fired...)
		sortByVoteDesc(byVote, pool, forest)
		eval := append([]int(nil), byVote[:sampleN/2]...)
		// Random half from the remainder.
		rest := append([]int(nil), byVote[sampleN/2:]...)
		rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
		if need := sampleN - len(eval); need > len(rest) {
			eval = append(eval, rest...)
		} else {
			eval = append(eval, rest[:need]...)
		}
		nonMatches := 0
		for _, i := range eval {
			if !ask(i) {
				nonMatches++
			}
		}
		if prec := float64(nonMatches) / float64(len(eval)); prec >= cfg.rulePrecision() {
			kept = append(kept, scored{rule: r, coverage: len(fired)})
		}
	}
	// Highest coverage first; cap at MaxRules.
	for i := 0; i < len(kept); i++ {
		for j := i + 1; j < len(kept); j++ {
			if kept[j].coverage > kept[i].coverage {
				kept[i], kept[j] = kept[j], kept[i]
			}
		}
	}
	if len(kept) > cfg.maxRules() {
		kept = kept[:cfg.maxRules()]
	}
	var out rules.RuleSet
	for _, s := range kept {
		out.Add(s.rule)
	}
	return out
}
