package falcon

import (
	"strings"
	"testing"

	"repro/internal/active"
	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/table"
)

// TestExtractBlockingRulesFigure4 reproduces the paper's Figure 4: a tree
// that predicts match only when ISBNs match and page counts match yields
// blocking rules for each "No" branch.
func TestExtractBlockingRulesFigure4(t *testing.T) {
	// Build the Figure 4 tree by hand: isbn_match <= 0.5 -> No;
	// else pages_match <= 0.5 -> No; else Yes.
	tree := &ml.DecisionTree{}
	// Train on data that forces exactly this structure.
	var x [][]float64
	var y []int
	add := func(isbn, pages float64, label int, n int) {
		for i := 0; i < n; i++ {
			x = append(x, []float64{isbn, pages})
			y = append(y, label)
		}
	}
	add(0, 0, 0, 30)
	add(0, 1, 0, 30)
	add(1, 0, 0, 30)
	add(1, 1, 1, 30)
	ds, err := ml.NewDataset(x, y, []string{"isbn_match", "pages_match"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	forest := forestWith(t, tree)
	rs, err := ExtractBlockingRules(forest, ds.Names)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("rules = %d, want 2 (one per No branch):\n%v", rs.Len(), rs.Rules)
	}
	// One rule must be the bare "isbn_match <= 0.5", the other the
	// conjunction with pages.
	var short, long *rules.Rule
	for i := range rs.Rules {
		if len(rs.Rules[i].Predicates) == 1 {
			short = &rs.Rules[i]
		} else {
			long = &rs.Rules[i]
		}
	}
	if short == nil || long == nil {
		t.Fatalf("expected a 1-predicate and a 2-predicate rule, got %v", rs.Rules)
	}
	if short.Predicates[0].Feature != "isbn_match" || short.Predicates[0].Op != rules.LE {
		t.Errorf("short rule = %s", short)
	}
	if len(long.Predicates) != 2 || long.Predicates[0].Op != rules.GT || long.Predicates[1].Feature != "pages_match" {
		t.Errorf("long rule = %s", long)
	}
}

// forestWith wraps hand-built trees in a RandomForest via fitting a
// single-tree forest and replacing its tree. Since trees are exported only
// through Trees(), we instead fit a forest on the same data; for the
// Figure 4 test we fit a 1-tree forest on deterministic data.
func forestWith(t *testing.T, tree *ml.DecisionTree) *ml.RandomForest {
	t.Helper()
	// Refit a 1-tree forest on the same distribution the tree saw by
	// predicting with the tree itself over a grid.
	var x [][]float64
	var y []int
	for _, isbn := range []float64{0, 1} {
		for _, pages := range []float64{0, 1} {
			for i := 0; i < 40; i++ {
				x = append(x, []float64{isbn, pages})
				y = append(y, ml.Predict(tree, []float64{isbn, pages}))
			}
		}
	}
	ds, err := ml.NewDataset(x, y, []string{"isbn_match", "pages_match"})
	if err != nil {
		t.Fatal(err)
	}
	f := &ml.RandomForest{NumTrees: 1, Seed: 3}
	if err := f.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExtractBlockingRulesUnfitted(t *testing.T) {
	if _, err := ExtractBlockingRules(&ml.RandomForest{}, nil); err == nil {
		t.Fatal("want unfitted-forest error")
	}
}

func TestExtractBlockingRulesDedup(t *testing.T) {
	// A 20-tree forest on an easy problem produces many duplicate
	// branches; extraction must dedupe them.
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		v := float64(i % 2) // feature 0 fully determines the label
		x = append(x, []float64{v})
		y = append(y, int(v))
	}
	ds, err := ml.NewDataset(x, y, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	f := &ml.RandomForest{NumTrees: 20, Seed: 1}
	if err := f.Fit(ds); err != nil {
		t.Fatal(err)
	}
	rs, err := ExtractBlockingRules(f, ds.Names)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rs.Rules {
		key := r.String()
		if seen[key] {
			t.Fatalf("duplicate rule %q", key)
		}
		seen[key] = true
	}
}

func TestRunEndToEndMembers(t *testing.T) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "members", Domain: datagen.PersonDomain(),
		SizeA: 300, SizeB: 300, MatchFraction: 0.5, Typo: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	cat := table.NewCatalog()
	res, err := Run(task.A, task.B, oracle, cat, Config{
		SampleSize: 800,
		Seed:       1,
		Blocking:   active.Config{SeedSize: 20, BatchSize: 10, MaxRounds: 10},
		Matching:   active.Config{SeedSize: 20, BatchSize: 10, MaxRounds: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, r := scoreMatches(res.Matches, task.Gold)
	if p < 0.85 || r < 0.85 {
		t.Errorf("members: precision %.3f recall %.3f, want both >= 0.85", p, r)
	}
	// Candidate set must be far below the 90000-pair cross product while
	// keeping nearly all matches.
	if res.Candidates.Len() >= 300*300/2 {
		t.Errorf("candidate set %d did not meaningfully block", res.Candidates.Len())
	}
	if q := res.TotalQuestions(); q > 1200 {
		t.Errorf("questions = %d, exceeding CloudMatcher's cap", q)
	}
	if res.MachineTime <= 0 {
		t.Error("machine time not recorded")
	}
}

func TestRunBudgeted(t *testing.T) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "small", Domain: datagen.ProductDomain(),
		SizeA: 200, SizeB: 200, MatchFraction: 0.5, Typo: 0.2, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	budget := label.NewBudgeted(label.NewOracle(task.Gold), 150)
	cat := table.NewCatalog()
	res, err := Run(task.A, task.B, budget, cat, Config{SampleSize: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := budget.Stats().Questions; got > 150 {
		t.Errorf("asked %d questions, budget 150", got)
	}
	if res.Matches == nil {
		t.Fatal("no match table produced")
	}
}

func TestRunEmptyTables(t *testing.T) {
	sch := table.StringSchema("id", "name")
	empty := table.New("E", sch)
	empty.MustSetKey("id")
	full := table.New("F", sch)
	full.MustAppend(table.String("x"), table.String("y"))
	full.MustSetKey("id")
	cat := table.NewCatalog()
	if _, err := Run(empty, full, label.NewOracle(label.NewGold(nil)), cat, Config{}); err == nil {
		t.Fatal("want empty-table error")
	}
}

func TestRuleQuestionsAreCounted(t *testing.T) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "count", Domain: datagen.BookDomain(),
		SizeA: 250, SizeB: 250, MatchFraction: 0.5, Typo: 0.2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)
	cat := table.NewCatalog()
	res, err := Run(task.A, task.B, oracle, cat, Config{SampleSize: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := res.BlockingQuestions + res.RuleQuestions + res.MatchingQuestions
	if total != oracle.Stats().Questions {
		t.Errorf("stage counts %d != labeler total %d", total, oracle.Stats().Questions)
	}
}

// scoreMatches computes precision/recall of a predicted match pair table
// against gold.
func scoreMatches(matches *table.Table, gold *label.Gold) (p, r float64) {
	tp := 0
	for i := 0; i < matches.Len(); i++ {
		if gold.IsMatch(matches.Get(i, "ltable_id").AsString(), matches.Get(i, "rtable_id").AsString()) {
			tp++
		}
	}
	if matches.Len() > 0 {
		p = float64(tp) / float64(matches.Len())
	} else {
		p = 1
	}
	if gold.Len() > 0 {
		r = float64(tp) / float64(gold.Len())
	} else {
		r = 1
	}
	return p, r
}

func TestBlockingRulesLookLikeFigure4(t *testing.T) {
	// On the books domain the learned blocking rules should mention the
	// discriminative features (isbn/title) rather than be empty.
	task, err := datagen.Generate(datagen.Spec{
		Name: "books", Domain: datagen.BookDomain(),
		SizeA: 300, SizeB: 300, MatchFraction: 0.5, Typo: 0.2, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := table.NewCatalog()
	res, err := Run(task.A, task.B, label.NewOracle(task.Gold), cat, Config{SampleSize: 600, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateRules.Len() == 0 {
		t.Fatal("no candidate rules extracted")
	}
	for _, r := range res.BlockingRules.Rules {
		for _, pred := range r.Predicates {
			if !strings.Contains(pred.Feature, "_") {
				t.Errorf("rule predicate feature %q does not look like a generated feature", pred.Feature)
			}
		}
	}
}
