package bitvec

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"
)

// mergeCount is the reference intersection: the same sorted merge as
// sim.IntersectSortedU32, restated here so the equivalence oracle does not
// depend on the package under comparison.
func mergeCount(a, b []uint32) int {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return inter
}

func sortedDedup(ids []uint32) []uint32 {
	out := slices.Clone(ids)
	slices.Sort(out)
	return slices.Compact(out)
}

// genSet draws a random sorted duplicate-free ID set whose blocks span the
// 64k boundary and mix sparse (array) and dense (bitmap) containers: each
// chosen block is filled either with a handful of IDs or with more than
// ArrayMaxCard of them.
func genSet(rng *rand.Rand) []uint32 {
	var ids []uint32
	for block := uint32(0); block < 3; block++ {
		switch rng.Intn(4) {
		case 0: // absent block
		case 1: // sparse block
			for k := 0; k < 1+rng.Intn(40); k++ {
				ids = append(ids, block<<16|uint32(rng.Intn(1<<16)))
			}
		case 2: // boundary-hugging sparse block
			for k := 0; k < 1+rng.Intn(8); k++ {
				ids = append(ids, block<<16|uint32(rng.Intn(4)))
				ids = append(ids, block<<16|uint32(1<<16-1-rng.Intn(4)))
			}
		default: // dense block: forces a bitmap container
			n := ArrayMaxCard + 1 + rng.Intn(ArrayMaxCard)
			for k := 0; k < n; k++ {
				ids = append(ids, block<<16|uint32(rng.Intn(1<<16)))
			}
		}
	}
	return sortedDedup(ids)
}

// TestQuickKernelEquivalence is the oracle: every bitset kernel must agree
// with the sorted-merge reference on arbitrary mixed-density inputs.
func TestQuickKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func() bool {
		a, b := genSet(rng), genSet(rng)
		sa, sb := FromSorted(a), FromSorted(b)
		want := mergeCount(a, b)
		if sa.Len() != len(a) || sb.Len() != len(b) {
			t.Errorf("Len mismatch: %d vs %d", sa.Len(), len(a))
			return false
		}
		if got := AndCount(sa, sb); got != want {
			t.Errorf("AndCount=%d want %d", got, want)
			return false
		}
		if got := AndCountArray(sa, b); got != want {
			t.Errorf("AndCountArray=%d want %d", got, want)
			return false
		}
		// Bounded variants: a non-negative return must be the exact count,
		// and -1 may only occur when the exact count is below need.
		for _, need := range []int{0, 1, want, want + 1, len(a)} {
			if got := AndCountBounded(sa, sb, need); got >= 0 && got != want {
				t.Errorf("AndCountBounded(need=%d)=%d want %d", need, got, want)
				return false
			} else if got < 0 && want >= need {
				t.Errorf("AndCountBounded(need=%d)=-1 but exact %d >= need", need, want)
				return false
			}
			if got := AndCountArrayBounded(sa, b, need); got >= 0 && got != want {
				t.Errorf("AndCountArrayBounded(need=%d)=%d want %d", need, got, want)
				return false
			} else if got < 0 && want >= need {
				t.Errorf("AndCountArrayBounded(need=%d)=-1 but exact %d >= need", need, want)
				return false
			}
		}
		// Round trip back to the sorted-slice representation.
		if got := sa.AppendTo(nil); !reflect.DeepEqual(got, a) && !(len(got) == 0 && len(a) == 0) {
			t.Errorf("AppendTo round trip diverged: %d ids vs %d", len(got), len(a))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickContains cross-checks membership against a map oracle.
func TestQuickContains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func() bool {
		a := genSet(rng)
		s := FromSorted(a)
		in := make(map[uint32]bool, len(a))
		for _, id := range a {
			in[id] = true
		}
		for _, id := range a {
			if !s.Contains(id) {
				t.Errorf("Contains(%d) = false for member", id)
				return false
			}
		}
		for k := 0; k < 200; k++ {
			id := uint32(rng.Intn(4 << 16))
			if s.Contains(id) != in[id] {
				t.Errorf("Contains(%d) = %v want %v", id, s.Contains(id), in[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickForEachIn checks windowed enumeration against slice filtering.
func TestQuickForEachIn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prop := func() bool {
		a := genSet(rng)
		s := FromSorted(a)
		lo := uint32(rng.Intn(3 << 16))
		hi := lo + uint32(rng.Intn(2<<16))
		var want []uint32
		for _, id := range a {
			if id >= lo && id < hi {
				want = append(want, id)
			}
		}
		var got []uint32
		s.ForEachIn(lo, hi, func(id uint32) bool {
			got = append(got, id)
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ForEachIn[%d,%d): got %d ids want %d", lo, hi, len(got), len(want))
			return false
		}
		// Early stop: the walk must halt at the first false.
		stopped := 0
		s.ForEachIn(lo, hi, func(uint32) bool {
			stopped++
			return stopped < 3
		})
		if len(want) >= 3 && stopped != 3 {
			t.Errorf("early stop visited %d want 3", stopped)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockBoundary pins the exact 64k edges: 65535 and 65536 land in
// different containers and must still intersect correctly.
func TestBlockBoundary(t *testing.T) {
	a := []uint32{0, 65534, 65535, 65536, 65537, 131071, 131072}
	b := []uint32{65535, 65536, 131072}
	sa, sb := FromSorted(a), FromSorted(b)
	if got := AndCount(sa, sb); got != 3 {
		t.Fatalf("AndCount across block boundary = %d, want 3", got)
	}
	for _, id := range b {
		if !sa.Contains(id) {
			t.Fatalf("Contains(%d) = false", id)
		}
	}
	if got := AndCountArray(sb, a); got != 3 {
		t.Fatalf("AndCountArray across block boundary = %d, want 3", got)
	}
}

// TestContainerShapes pins the array/bitmap flip: exactly ArrayMaxCard
// members stay an array, one more flips to a bitmap, and every pairing of
// shapes intersects identically.
func TestContainerShapes(t *testing.T) {
	dense := make([]uint32, ArrayMaxCard+1)
	for i := range dense {
		dense[i] = uint32(i * 3)
	}
	atCap := dense[:ArrayMaxCard]
	sparse := []uint32{0, 3, 7, 9000}

	if c := FromSorted(atCap).cons[0]; c.arr == nil {
		t.Fatal("ArrayMaxCard members should remain an array container")
	}
	if c := FromSorted(dense).cons[0]; c.bits == nil {
		t.Fatal("ArrayMaxCard+1 members should flip to a bitmap container")
	}
	for _, a := range [][]uint32{dense, atCap, sparse} {
		for _, b := range [][]uint32{dense, atCap, sparse} {
			want := mergeCount(a, b)
			if got := AndCount(FromSorted(a), FromSorted(b)); got != want {
				t.Errorf("AndCount(%d ids, %d ids) = %d, want %d", len(a), len(b), got, want)
			}
		}
	}
}

// TestEmptySet pins the zero value and empty-input behavior.
func TestEmptySet(t *testing.T) {
	var zero Set
	s := FromSorted(nil)
	if s.Len() != 0 || zero.Len() != 0 {
		t.Fatal("empty sets must have Len 0")
	}
	if got := AndCount(s, &zero); got != 0 {
		t.Fatalf("AndCount(empty) = %d", got)
	}
	if got := AndCountArray(&zero, []uint32{1, 2}); got != 0 {
		t.Fatalf("AndCountArray(empty set) = %d", got)
	}
	if zero.Contains(5) {
		t.Fatal("empty set contains nothing")
	}
}

// TestIntersectionKernelsZeroAlloc is the satellite guard: none of the
// intersection kernels may allocate.
func TestIntersectionKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a, b := genSet(rng), genSet(rng)
	sa, sb := FromSorted(a), FromSorted(b)
	need := mergeCount(a, b)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"AndCount", func() { AndCount(sa, sb) }},
		{"AndCountBounded", func() { AndCountBounded(sa, sb, need) }},
		{"AndCountArray", func() { AndCountArray(sa, b) }},
		{"AndCountArrayBounded", func() { AndCountArrayBounded(sa, b, need) }},
		{"Contains", func() { sa.Contains(b[0]) }},
	} {
		if allocs := testing.AllocsPerRun(20, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per run, want 0", tc.name, allocs)
		}
	}
}
