package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAddMatchesFromSorted pins the incremental-build contract the serving
// core relies on: a Set grown one Add at a time — in arbitrary insertion
// order, with duplicates — must be indistinguishable from FromSorted over
// the final membership, including the array/bitmap container layout.
func TestAddMatchesFromSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		ids := genSet(rng)
		shuffled := append([]uint32(nil), ids...)
		// Duplicate a slice of the members to exercise the no-op path.
		shuffled = append(shuffled, shuffled[:len(shuffled)/3]...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		grown := &Set{}
		for _, id := range shuffled {
			grown.Add(id)
		}
		want := FromSorted(ids)
		if grown.Len() != want.Len() {
			t.Fatalf("trial %d: Len = %d, want %d", trial, grown.Len(), want.Len())
		}
		if !reflect.DeepEqual(grown.AppendTo(nil), want.AppendTo(nil)) {
			t.Fatalf("trial %d: membership diverged from FromSorted", trial)
		}
		if len(grown.cons) != len(want.cons) {
			t.Fatalf("trial %d: %d containers, want %d", trial, len(grown.cons), len(want.cons))
		}
		for ci := range want.cons {
			g, w := &grown.cons[ci], &want.cons[ci]
			if g.key != w.key || g.card != w.card || (g.bits != nil) != (w.bits != nil) {
				t.Fatalf("trial %d container %d: key/card/layout (%d,%d,bitmap=%v) != (%d,%d,bitmap=%v)",
					trial, ci, g.key, g.card, g.bits != nil, w.key, w.card, w.bits != nil)
			}
		}
	}
}

// TestAddFlipsContainerAtThreshold pins the exact roaring flip point under
// incremental growth: ArrayMaxCard members stay an array, one more flips
// the container to a bitmap — and intersections keep working across the
// flip.
func TestAddFlipsContainerAtThreshold(t *testing.T) {
	s := &Set{}
	for i := 0; i < ArrayMaxCard; i++ {
		s.Add(uint32(i))
	}
	if s.cons[0].bits != nil {
		t.Fatalf("container flipped to bitmap at %d members, flip point is %d+1", ArrayMaxCard, ArrayMaxCard)
	}
	s.Add(uint32(ArrayMaxCard))
	if s.cons[0].bits == nil || s.cons[0].arr != nil {
		t.Fatal("container still an array past ArrayMaxCard members")
	}
	if s.Len() != ArrayMaxCard+1 {
		t.Fatalf("Len = %d, want %d", s.Len(), ArrayMaxCard+1)
	}
	probe := FromSorted([]uint32{0, uint32(ArrayMaxCard), 1 << 20})
	if got := AndCount(s, probe); got != 2 {
		t.Fatalf("AndCount across flip = %d, want 2", got)
	}
}
