// Package bitvec provides a roaring-style compressed bitset over dense
// uint32 IDs — the representation layer under the set-similarity joins'
// bitmap postings and dense-set verification (package simjoin) and the
// dense-set similarity kernels (package sim's *Bits variants).
//
// A Set partitions the 32-bit ID space into 64Ki-ID blocks keyed by the
// high 16 bits. Each populated block holds one container, chosen by
// cardinality: at most ArrayMaxCard members stay a sorted []uint16 array
// (2 bytes/member), more flip to a packed []uint64 bitmap (fixed 8 KiB,
// word-level AND + popcount intersection). This is the hybrid of Roaring
// Bitmaps, and the layout Large-Scale Collective Entity Matching uses to
// carry similarity joins to web scale: after intern.FrequencyRemap orders
// token IDs rarest-first, the high-frequency tokens every dense record
// shares cluster into the top blocks, exactly where bitmap containers pay.
//
// All intersection kernels are allocation-free (pinned by AllocsPerRun
// guards in bitvec_test.go) and agree bit for bit with the sorted-merge
// kernels of package sim — the testing/quick properties in the same file
// are the equivalence oracle.
package bitvec

import (
	"math/bits"
	"sort"
)

const (
	// blockShift and blockMask split an ID into (block key, low bits).
	blockShift = 16
	blockMask  = 1<<blockShift - 1
	// wordsPerBlock is the size of a bitmap container: 64Ki bits.
	wordsPerBlock = 1 << (blockShift - 6)
	// ArrayMaxCard is the container flip point: a block with at most this
	// many members is a sorted []uint16 array (<= 8 KiB, same as the
	// bitmap), above it a packed bitmap. 4096 is the classic roaring
	// threshold where the two representations cross in size.
	ArrayMaxCard = 4096
)

// container is one populated 64Ki-ID block: exactly one of arr and bits
// is non-nil.
type container struct {
	key  uint16   // block key: ID >> 16
	card int32    // member count
	arr  []uint16 // sorted low-16-bit members, len == card
	bits []uint64 // packed bitmap of low-16-bit members, len == wordsPerBlock
}

// Set is a compressed set of uint32 IDs. Build one with FromSorted (or
// grow one incrementally with Add); the zero value is the empty set. A
// Set is not safe for concurrent mutation: construct — or mutate under
// the owner's lock — then share read-only across goroutines (the
// DESIGN.md §5 convention). The serving core (package serve) is the one
// mutating owner: it patches bitmap postings in place under the corpus
// write lock.
type Set struct {
	cons []container
	n    int
}

// FromSorted builds a Set from ascending, duplicate-free IDs (the
// representation intern.SortedDedup produces). The input is not retained.
func FromSorted(ids []uint32) *Set {
	s := &Set{n: len(ids)}
	for lo := 0; lo < len(ids); {
		key := uint16(ids[lo] >> blockShift)
		hi := lo + 1
		for hi < len(ids) && uint16(ids[hi]>>blockShift) == key {
			hi++
		}
		c := container{key: key, card: int32(hi - lo)}
		if hi-lo > ArrayMaxCard {
			c.bits = make([]uint64, wordsPerBlock)
			for _, id := range ids[lo:hi] {
				low := id & blockMask
				c.bits[low>>6] |= 1 << (low & 63)
			}
		} else {
			c.arr = make([]uint16, hi-lo)
			for k, id := range ids[lo:hi] {
				c.arr[k] = uint16(id & blockMask)
			}
		}
		s.cons = append(s.cons, c)
		lo = hi
	}
	return s
}

// Len returns the number of members.
func (s *Set) Len() int { return s.n }

// Add inserts id, keeping the container layout canonical: array
// containers stay sorted and flip to bitmaps once they exceed
// ArrayMaxCard, exactly as FromSorted would have built them — so a Set
// grown by Add is indistinguishable from one built from the final
// membership (pinned by TestAddMatchesFromSorted). Adding a present
// member is a no-op.
func (s *Set) Add(id uint32) {
	key := uint16(id >> blockShift)
	low := uint16(id & blockMask)
	ci := sort.Search(len(s.cons), func(k int) bool { return s.cons[k].key >= key })
	if ci == len(s.cons) || s.cons[ci].key != key {
		s.cons = append(s.cons, container{})
		copy(s.cons[ci+1:], s.cons[ci:])
		s.cons[ci] = container{key: key, card: 1, arr: []uint16{low}}
		s.n++
		return
	}
	c := &s.cons[ci]
	if c.bits != nil {
		w, bit := low>>6, uint64(1)<<(low&63)
		if c.bits[w]&bit != 0 {
			return
		}
		c.bits[w] |= bit
		c.card++
		s.n++
		return
	}
	i := sort.Search(len(c.arr), func(k int) bool { return c.arr[k] >= low })
	if i < len(c.arr) && c.arr[i] == low {
		return
	}
	if len(c.arr) >= ArrayMaxCard {
		// Flip to a bitmap before inserting the member that would push
		// the array past the roaring threshold.
		bm := make([]uint64, wordsPerBlock)
		for _, m := range c.arr {
			bm[m>>6] |= 1 << (m & 63)
		}
		bm[low>>6] |= 1 << (low & 63)
		c.arr, c.bits = nil, bm
		c.card++
		s.n++
		return
	}
	c.arr = append(c.arr, 0)
	copy(c.arr[i+1:], c.arr[i:])
	c.arr[i] = low
	c.card++
	s.n++
}

// Contains reports membership of id.
//
//emlint:zeroalloc
func (s *Set) Contains(id uint32) bool {
	c := s.find(uint16(id >> blockShift))
	if c == nil {
		return false
	}
	low := uint16(id & blockMask)
	if c.bits != nil {
		return c.bits[low>>6]&(1<<(low&63)) != 0
	}
	i := sort.Search(len(c.arr), func(k int) bool { return c.arr[k] >= low })
	return i < len(c.arr) && c.arr[i] == low
}

// find returns the container for key, or nil.
func (s *Set) find(key uint16) *container {
	lo, hi := 0, len(s.cons)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cons[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.cons) && s.cons[lo].key == key {
		return &s.cons[lo]
	}
	return nil
}

// AppendTo appends the members in ascending order to dst and returns the
// extended slice — the round-trip back to the sorted-slice representation
// the merge kernels consume.
func (s *Set) AppendTo(dst []uint32) []uint32 {
	for _, c := range s.cons {
		base := uint32(c.key) << blockShift
		if c.bits != nil {
			for w, word := range c.bits {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					dst = append(dst, base|uint32(w<<6+b))
					word &= word - 1
				}
			}
		} else {
			for _, low := range c.arr {
				dst = append(dst, base|uint32(low))
			}
		}
	}
	return dst
}

// ForEachIn calls fn for every member in [lo, hi) in ascending order,
// stopping early when fn returns false. It is the enumeration primitive
// the simjoin bitmap postings use to walk only the candidate records
// inside a probe's size window.
func (s *Set) ForEachIn(lo, hi uint32, fn func(id uint32) bool) {
	if hi <= lo {
		return
	}
	loKey := uint16(lo >> blockShift)
	ci := sort.Search(len(s.cons), func(k int) bool { return s.cons[k].key >= loKey })
	for ; ci < len(s.cons); ci++ {
		c := &s.cons[ci]
		base := uint32(c.key) << blockShift
		if base >= hi {
			return
		}
		if c.bits != nil {
			wLo := 0
			if base < lo {
				wLo = int(lo-base) >> 6
			}
			for w := wLo; w < wordsPerBlock; w++ {
				word := c.bits[w]
				if word == 0 {
					continue
				}
				wb := base | uint32(w<<6)
				if wb >= hi {
					return
				}
				for word != 0 {
					b := bits.TrailingZeros64(word)
					id := wb | uint32(b)
					word &= word - 1
					if id < lo {
						continue
					}
					if id >= hi {
						return
					}
					if !fn(id) {
						return
					}
				}
			}
		} else {
			k := 0
			if base < lo {
				low := uint16(lo & blockMask)
				k = sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= low })
			}
			for ; k < len(c.arr); k++ {
				id := base | uint32(c.arr[k])
				if id >= hi {
					return
				}
				if !fn(id) {
					return
				}
			}
		}
	}
}

// AndCount returns |a ∩ b|. Containers intersect pairwise by block key;
// bitmap×bitmap blocks run the word-level AND + popcount kernel.
//
//emlint:zeroalloc
func AndCount(a, b *Set) int {
	inter := 0
	i, j := 0, 0
	for i < len(a.cons) && j < len(b.cons) {
		ca, cb := &a.cons[i], &b.cons[j]
		switch {
		case ca.key == cb.key:
			inter += containerAndCount(ca, cb)
			i++
			j++
		case ca.key < cb.key:
			i++
		default:
			j++
		}
	}
	return inter
}

// AndCountBounded returns |a ∩ b| when it is at least need, or -1 as soon
// as the remaining containers cannot reach need — the container-granular
// analogue of sim.IntersectSortedU32Bounded's suffix early exit. A
// non-negative return is always the exact intersection size.
//
//emlint:zeroalloc
func AndCountBounded(a, b *Set, need int) int {
	inter := 0
	i, j := 0, 0
	remA, remB := a.n, b.n
	for i < len(a.cons) && j < len(b.cons) {
		rem := remA
		if remB < rem {
			rem = remB
		}
		if inter+rem < need {
			return -1
		}
		ca, cb := &a.cons[i], &b.cons[j]
		switch {
		case ca.key == cb.key:
			inter += containerAndCount(ca, cb)
			remA -= int(ca.card)
			remB -= int(cb.card)
			i++
			j++
		case ca.key < cb.key:
			remA -= int(ca.card)
			i++
		default:
			remB -= int(cb.card)
			j++
		}
	}
	return inter
}

// containerAndCount intersects two containers with the same block key.
func containerAndCount(a, b *container) int {
	switch {
	case a.bits != nil && b.bits != nil:
		// The hot kernel: 1024 word ANDs + popcounts, no branches.
		inter := 0
		for w, word := range a.bits {
			inter += bits.OnesCount64(word & b.bits[w])
		}
		return inter
	case a.bits != nil:
		return arrayBitmapAndCount(b.arr, a.bits)
	case b.bits != nil:
		return arrayBitmapAndCount(a.arr, b.bits)
	default:
		return arrayAndCount(a.arr, b.arr)
	}
}

// arrayBitmapAndCount probes each array member against the bitmap.
func arrayBitmapAndCount(arr []uint16, bm []uint64) int {
	inter := 0
	for _, low := range arr {
		if bm[low>>6]&(1<<(low&63)) != 0 {
			inter++
		}
	}
	return inter
}

// arrayAndCount merges two sorted uint16 arrays.
func arrayAndCount(a, b []uint16) int {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return inter
}

// AndCountArray returns |s ∩ ids| for ascending, duplicate-free ids —
// the asymmetric kernel the joins use to verify a small probe set against
// a dense indexed record without materializing the probe as a Set. It
// walks ids block-run by block-run, advancing the container cursor once
// per run rather than once per ID.
//
//emlint:zeroalloc
func AndCountArray(s *Set, ids []uint32) int {
	inter := 0
	ci := 0
	for lo := 0; lo < len(ids); {
		key := uint16(ids[lo] >> blockShift)
		hi := lo + 1
		for hi < len(ids) && uint16(ids[hi]>>blockShift) == key {
			hi++
		}
		for ci < len(s.cons) && s.cons[ci].key < key {
			ci++
		}
		if ci == len(s.cons) {
			return inter
		}
		if c := &s.cons[ci]; c.key == key {
			inter += containerRunAndCount(c, ids[lo:hi])
		}
		lo = hi
	}
	return inter
}

// AndCountArrayBounded is AndCountArray with the suffix early exit of
// sim.IntersectSortedU32Bounded: it returns -1 as soon as the remaining
// ids cannot lift the intersection to need. A non-negative return is
// always the exact intersection size (it may still be below need when the
// walk completes before the bound triggers).
//
//emlint:zeroalloc
func AndCountArrayBounded(s *Set, ids []uint32, need int) int {
	inter := 0
	ci := 0
	for lo := 0; lo < len(ids); {
		if inter+len(ids)-lo < need {
			return -1
		}
		key := uint16(ids[lo] >> blockShift)
		hi := lo + 1
		for hi < len(ids) && uint16(ids[hi]>>blockShift) == key {
			hi++
		}
		for ci < len(s.cons) && s.cons[ci].key < key {
			ci++
		}
		if ci == len(s.cons) {
			return inter
		}
		if c := &s.cons[ci]; c.key == key {
			inter += containerRunAndCount(c, ids[lo:hi])
		}
		lo = hi
	}
	return inter
}

// containerRunAndCount intersects one container against one block run of
// IDs (all sharing the container's block key).
func containerRunAndCount(c *container, run []uint32) int {
	if c.bits != nil {
		inter := 0
		for _, id := range run {
			low := id & blockMask
			if c.bits[low>>6]&(1<<(low&63)) != 0 {
				inter++
			}
		}
		return inter
	}
	return arrayRunAndCount(c.arr, run)
}

// arrayRunAndCount merges a container array against one block run of IDs.
func arrayRunAndCount(arr []uint16, run []uint32) int {
	inter := 0
	i, j := 0, 0
	for i < len(arr) && j < len(run) {
		low := uint16(run[j] & blockMask)
		switch {
		case arr[i] == low:
			inter++
			i++
			j++
		case arr[i] < low:
			i++
		default:
			j++
		}
	}
	return inter
}
