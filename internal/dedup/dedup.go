// Package dedup adapts the two-table EM machinery to the other common EM
// scenario the paper names (§2): "matching tuples within a single table".
// A table is matched against itself through any Blocker, with the
// redundant pairs removed — self-pairs (a, a) and mirror duplicates
// ((a, b) after (b, a)) — and predicted matches can be collapsed into
// entity clusters with package cluster.
package dedup

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/table"
)

// Block runs the blocker on the table against itself and canonicalizes
// the result: self-pairs are dropped, and of each mirror pair only the
// (lid < rid) orientation is kept. The returned pair table is registered
// in cat with the input table on both sides.
func Block(t *table.Table, blk block.Blocker, cat *table.Catalog) (*table.Table, error) {
	if t.Key() == "" {
		return nil, fmt.Errorf("dedup: table %q has no key", t.Name())
	}
	raw, err := blk.Block(t, t, cat)
	if err != nil {
		return nil, err
	}
	meta, ok := cat.PairMeta(raw)
	if !ok {
		return nil, fmt.Errorf("dedup: blocker %q returned an unregistered pair table", blk.Name())
	}
	out, err := table.NewPairTable("dedup("+blk.Name()+")", t, t, cat)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]string]bool, raw.Len())
	for i := 0; i < raw.Len(); i++ {
		l := raw.Get(i, meta.LID).AsString()
		r := raw.Get(i, meta.RID).AsString()
		if l == r {
			continue // a record trivially matches itself
		}
		if l > r {
			l, r = r, l
		}
		k := [2]string{l, r}
		if seen[k] {
			continue
		}
		seen[k] = true
		table.AppendPair(out, l, r)
	}
	cat.Drop(raw)
	return out, nil
}

// Groups collapses predicted duplicate pairs (a canonicalized pair table
// over one base table) into duplicate groups via union-find: every group
// lists the ids of records referring to one real-world entity. Singleton
// records are not reported. Groups and their members are sorted.
func Groups(matches *table.Table, cat *table.Catalog) ([][]string, error) {
	meta, ok := cat.PairMeta(matches)
	if !ok {
		return nil, fmt.Errorf("dedup: match table %q not registered", matches.Name())
	}
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < matches.Len(); i++ {
		l := find(matches.Get(i, meta.LID).AsString())
		r := find(matches.Get(i, meta.RID).AsString())
		if l != r {
			parent[l] = r
		}
	}
	byRoot := make(map[string][]string)
	for id := range parent {
		root := find(id)
		byRoot[root] = append(byRoot[root], id)
	}
	var groups [][]string
	for _, members := range byRoot {
		sortStrings(members)
		groups = append(groups, members)
	}
	sortGroups(groups)
	return groups, nil
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func sortGroups(gs [][]string) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j][0] < gs[j-1][0]; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}
