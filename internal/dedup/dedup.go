// Package dedup adapts the two-table EM machinery to the other common EM
// scenario the paper names (§2): "matching tuples within a single table".
// A table is matched against itself through any Blocker, with the
// redundant pairs removed — self-pairs (a, a) and mirror duplicates
// ((a, b) after (b, a)) — and predicted matches can be collapsed into
// entity clusters with package cluster.
package dedup

import (
	"fmt"
	"sort"

	"repro/internal/block"
	"repro/internal/table"
)

// Block runs the blocker on the table against itself and canonicalizes
// the result: self-pairs are dropped, and of each mirror pair only the
// (lid < rid) orientation is kept. The returned pair table is registered
// in cat with the input table on both sides.
func Block(t *table.Table, blk block.Blocker, cat *table.Catalog) (*table.Table, error) {
	if t.Key() == "" {
		return nil, fmt.Errorf("dedup: table %q has no key", t.Name())
	}
	raw, err := blk.Block(t, t, cat)
	if err != nil {
		return nil, err
	}
	meta, ok := cat.PairMeta(raw)
	if !ok {
		return nil, fmt.Errorf("dedup: blocker %q returned an unregistered pair table", blk.Name())
	}
	out, err := table.NewPairTable("dedup("+blk.Name()+")", t, t, cat)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]string]bool, raw.Len())
	for i := 0; i < raw.Len(); i++ {
		l := raw.Get(i, meta.LID).AsString()
		r := raw.Get(i, meta.RID).AsString()
		if l == r {
			continue // a record trivially matches itself
		}
		if l > r {
			l, r = r, l
		}
		k := [2]string{l, r}
		if seen[k] {
			continue
		}
		seen[k] = true
		table.AppendPair(out, l, r)
	}
	cat.Drop(raw)
	return out, nil
}

// Groups collapses predicted duplicate pairs (a canonicalized pair table
// over one base table) into duplicate groups via union-find: every group
// lists the ids of records referring to one real-world entity. Singleton
// records are not reported. Groups and their members are sorted.
func Groups(matches *table.Table, cat *table.Catalog) ([][]string, error) {
	meta, ok := cat.PairMeta(matches)
	if !ok {
		return nil, fmt.Errorf("dedup: match table %q not registered", matches.Name())
	}
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < matches.Len(); i++ {
		l := find(matches.Get(i, meta.LID).AsString())
		r := find(matches.Get(i, meta.RID).AsString())
		if l != r {
			parent[l] = r
		}
	}
	ids := make([]string, 0, len(parent))
	for id := range parent {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	byRoot := make(map[string][]string)
	roots := make([]string, 0, len(byRoot))
	for _, id := range ids {
		root := find(id)
		if _, ok := byRoot[root]; !ok {
			roots = append(roots, root)
		}
		byRoot[root] = append(byRoot[root], id)
	}
	// Members inherit the sorted id order; groups sort by first member.
	groups := make([][]string, 0, len(roots))
	for _, root := range roots {
		groups = append(groups, byRoot[root])
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups, nil
}
