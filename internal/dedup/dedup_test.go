package dedup

import (
	"reflect"
	"testing"

	"repro/internal/block"
	"repro/internal/table"
)

func dirtyTable(t *testing.T) *table.Table {
	t.Helper()
	tab := table.New("customers", table.StringSchema("id", "name", "city"))
	rows := [][]string{
		{"c1", "dave smith", "madison"},
		{"c2", "david smith", "madison"}, // dup of c1
		{"c3", "d. smith", "madison"},    // dup of c1
		{"c4", "joe wilson", "san jose"},
		{"c5", "joseph wilson", "san jose"}, // dup of c4
		{"c6", "ann miller", "chicago"},     // singleton
	}
	for _, r := range rows {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.SetKey("id"); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestBlockCanonicalizes(t *testing.T) {
	tab := dirtyTable(t)
	cat := table.NewCatalog()
	pairs, err := Block(tab, block.OverlapBlocker{Attr: "name", MinOverlap: 1}, cat)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < pairs.Len(); i++ {
		l := pairs.Get(i, "ltable_id").AsString()
		r := pairs.Get(i, "rtable_id").AsString()
		if l == r {
			t.Fatalf("self pair %s survived", l)
		}
		if l >= r {
			t.Fatalf("pair (%s,%s) not canonicalized to lid < rid", l, r)
		}
		k := l + "/" + r
		if seen[k] {
			t.Fatalf("duplicate pair %s", k)
		}
		seen[k] = true
	}
	// Smith cluster pairs must be present.
	if !seen["c1/c2"] {
		t.Error("c1/c2 missing")
	}
	// Wilson pair present.
	if !seen["c4/c5"] {
		t.Error("c4/c5 missing")
	}
	if err := cat.ValidatePair(pairs); err != nil {
		t.Fatalf("pair table fails FK validation: %v", err)
	}
}

func TestBlockRequiresKey(t *testing.T) {
	tab := table.New("nk", table.StringSchema("id"))
	tab.MustAppend(table.String("x"))
	cat := table.NewCatalog()
	if _, err := Block(tab, block.CrossBlocker{}, cat); err == nil {
		t.Fatal("want no-key error")
	}
}

func TestGroups(t *testing.T) {
	tab := dirtyTable(t)
	cat := table.NewCatalog()
	matches, err := table.NewPairTable("m", tab, tab, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Chain: c1-c2, c2-c3 (transitively one group), plus c4-c5.
	table.AppendPair(matches, "c1", "c2")
	table.AppendPair(matches, "c2", "c3")
	table.AppendPair(matches, "c4", "c5")
	groups, err := Groups(matches, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"c1", "c2", "c3"}, {"c4", "c5"}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestGroupsUnregistered(t *testing.T) {
	cat := table.NewCatalog()
	orphan := table.New("x", table.DefaultPairSchema())
	if _, err := Groups(orphan, cat); err == nil {
		t.Fatal("want unregistered error")
	}
}

func TestEndToEndDedup(t *testing.T) {
	// Block + trivially "match everything blocked" + group: on this toy
	// table name-overlap blocking alone nearly identifies the duplicate
	// groups (smith tokens collide across clusters, so just check the
	// wilson group survives intact).
	tab := dirtyTable(t)
	cat := table.NewCatalog()
	pairs, err := Block(tab, block.JaccardBlocker{Attr: "city", Threshold: 0.99}, cat)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Groups(pairs, cat)
	if err != nil {
		t.Fatal(err)
	}
	foundWilson := false
	for _, g := range groups {
		if reflect.DeepEqual(g, []string{"c4", "c5"}) {
			foundWilson = true
		}
	}
	if !foundWilson {
		t.Errorf("wilson duplicate group missing from %v", groups)
	}
}
