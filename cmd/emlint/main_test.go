package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module so driver tests never mutate
// the real tree. files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixturemod\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cleanSrc = `package fx

func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
`

// fixableSrc carries exactly one finding (hotalloc prealloc) whose
// suggested fix is derivable, so -fix repairs the whole tree.
const fixableSrc = `package fx

func Pairs(ls, rs []int) []int {
	var out []int
	for _, l := range ls {
		for _, r := range rs {
			out = append(out, l+r)
		}
	}
	return out
}
`

// unfixableSrc carries one finding with no suggested fix (errdrop).
const unfixableSrc = `package fx

import "os"

func Touch(name string) {
	f, _ := os.Create(name)
	f.Close()
}
`

func TestRunCleanTree(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": cleanSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean tree printed: %q", stdout.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": unfixableSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "fx.go") || !strings.Contains(out, "[errdrop]") {
		t.Fatalf("text output missing file/check: %q", out)
	}
	if !strings.Contains(stderr.String(), "invariant violation") {
		t.Fatalf("stderr missing summary: %q", stderr.String())
	}
	// Paths are module-relative, not absolute.
	if strings.Contains(out, root) {
		t.Fatalf("output leaks absolute paths: %q", out)
	}
}

func TestRunUsageErrorsExitTwo(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": cleanSrc})
	cases := [][]string{
		{"-format=bogus", "./..."},
		{"-checks=nosuchcheck", "./..."},
		{"-nosuchflag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, root, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

func TestRunTypeErrorExitTwo(t *testing.T) {
	root := writeModule(t, map[string]string{
		"fx/fx.go": "package fx\n\nfunc Bad() int { return undefinedSymbol }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, root, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "emlint:") {
		t.Fatalf("stderr missing error report: %q", stderr.String())
	}
}

func TestRunJSONShape(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": fixableSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.File != filepath.Join("fx", "fx.go") || d.Line == 0 || d.Col == 0 || d.Check != "hotalloc" || d.Message == "" {
		t.Fatalf("bad shape: %+v", d)
	}
	if len(d.Fixes) != 1 || len(d.Fixes[0].Edits) != 1 {
		t.Fatalf("expected one suggested fix with one edit: %+v", d.Fixes)
	}
}

func TestRunJSONEmptyArray(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": cleanSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format=json", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestRunGithubFormat(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": unfixableSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format=github", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, "::[errdrop]") {
		t.Fatalf("not a workflow annotation: %q", line)
	}
}

func TestRunFixIdempotent(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": fixableSrc})

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fix", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("first -fix exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "applied 1 fix(es) across 1 file(s)") {
		t.Fatalf("first -fix output: %q", stdout.String())
	}

	fixed, err := os.ReadFile(filepath.Join(root, "fx", "fx.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "out := make([]int, 0, len(ls))") {
		t.Fatalf("fix not applied:\n%s", fixed)
	}

	// Second run must be a no-op on an already-fixed tree.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-fix", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("second -fix exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "applied 0 fix(es) across 0 file(s)") {
		t.Fatalf("second -fix output: %q", stdout.String())
	}
	again, err := os.ReadFile(filepath.Join(root, "fx", "fx.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, again) {
		t.Fatalf("second -fix changed the file:\n%s", again)
	}
}

func TestRunFixLeavesUnfixable(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": unfixableSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fix", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1 (finding has no fix)", code)
	}
	if !strings.Contains(stdout.String(), "applied 0 fix(es)") {
		t.Fatalf("output: %q", stdout.String())
	}
}

func TestRunList(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": cleanSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, check := range []string{
		"errdrop", "hotalloc", "locksafety", "maporder", "nondeterminism",
		"rlockwrite", "lockorder", "ctxflow", "httperrors", "staleallow",
		"aliasleak", "allocguard", "atomicmix", "escapecheck",
	} {
		if !strings.Contains(stdout.String(), check) {
			t.Errorf("-list missing %s", check)
		}
	}
}

// staleSrc carries one used directive (suppressing a real errdrop
// finding) and one stale directive citing a check that fires nothing.
const staleSrc = `package fx

import "os"

func Touch(name string) {
	f, _ := os.Create(name) //emlint:allow errdrop -- fixture: scratch file
	f.Close()               //emlint:allow nogoroutine -- stale on purpose
}
`

// TestRunStaleAllows: -staleallows reports only the dead directive, and
// the default run reports it too (the audit is on by default).
func TestRunStaleAllows(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": staleSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-staleallows", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[staleallow]") || !strings.Contains(out, "nogoroutine") {
		t.Fatalf("-staleallows missing the dead directive: %q", out)
	}
	if strings.Contains(out, "[errdrop]") || strings.Contains(out, "allow directive for errdrop") {
		t.Fatalf("-staleallows flagged the used directive or leaked other checks: %q", out)
	}
	if got := strings.Count(out, "[staleallow]"); got != 1 {
		t.Fatalf("want exactly 1 stale directive, got %d: %q", got, out)
	}
}

// TestRunChecksNegation: an all-negated -checks spec runs the suite minus
// the named checks; mixing forms or negating unknown checks is a usage
// error.
func TestRunChecksNegation(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": fixableSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks=-hotalloc", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (hotalloc excluded); stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	for _, spec := range []string{"-checks=errdrop,-hotalloc", "-checks=-nosuchcheck"} {
		stdout.Reset()
		stderr.Reset()
		if code := run([]string{spec, "./..."}, root, &stdout, &stderr); code != 2 {
			t.Errorf("run(%s) exit = %d, want 2; stderr: %s", spec, code, stderr.String())
		}
	}
}

// TestRunJSONHasFix: has_fix distinguishes repairable findings without
// forcing consumers to inspect the fix payloads.
func TestRunJSONHasFix(t *testing.T) {
	cases := []struct {
		src    string
		hasFix bool
		check  string
	}{
		{fixableSrc, true, "hotalloc"},
		{unfixableSrc, false, "errdrop"},
	}
	for _, c := range cases {
		root := writeModule(t, map[string]string{"fx/fx.go": c.src})
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-json", "./..."}, root, &stdout, &stderr); code != 1 {
			t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
		}
		var diags []jsonDiagnostic
		if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
			t.Fatal(err)
		}
		if len(diags) == 0 {
			t.Fatalf("no %s findings reported", c.check)
		}
		for _, d := range diags {
			if d.Check != c.check || d.HasFix != c.hasFix {
				t.Fatalf("want only %s findings with has_fix=%v, got %+v", c.check, c.hasFix, diags)
			}
		}
	}
}

// zeroallocViolationSrc breaks its own //emlint:zeroalloc contract: the
// local moves to the heap. This is the artificially introduced escape the
// acceptance criteria require make lint-perf to catch.
const zeroallocViolationSrc = `package fx

// Boxed promises zero allocations but returns the address of a local.
//
//emlint:zeroalloc
func Boxed(n int) *int {
	x := n + 1
	return &x
}
`

// TestRunEscapeCheckCatchesIntroducedEscape: in a temp module with no
// baseline, escapecheck fails on a zeroalloc function whose local escapes
// — the behavior make lint-perf relies on.
func TestRunEscapeCheckCatchesIntroducedEscape(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": zeroallocViolationSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks=escapecheck", "./..."}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[escapecheck]") || !strings.Contains(out, "moved to heap: x") {
		t.Fatalf("escape not attributed to the contract: %q", out)
	}
}

// TestRunUpdateBaselineGrandfathers: -update-baseline records the current
// violations; a subsequent escapecheck run passes, and the report file
// carries the parsed facts.
func TestRunUpdateBaselineGrandfathers(t *testing.T) {
	root := writeModule(t, map[string]string{"fx/fx.go": zeroallocViolationSrc})
	reportPath := filepath.Join(root, "escape-report.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-update-baseline", "-escape-report=" + reportPath, "./..."}, root, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-update-baseline exit = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "escape_baseline.json") {
		t.Fatalf("no baseline summary printed: %q", stdout.String())
	}
	baseline, err := os.ReadFile(filepath.Join(root, "lint", "escape_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(baseline), "Boxed") || !strings.Contains(string(baseline), "moved to heap: x") {
		t.Fatalf("baseline missing the accepted violation:\n%s", baseline)
	}
	report, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(report, &parsed); err != nil {
		t.Fatalf("escape report is not a JSON array: %v\n%s", err, report)
	}
	if len(parsed) != 1 || parsed[0]["package"] != "fixturemod/fx" {
		t.Fatalf("unexpected report shape: %s", report)
	}

	// The recorded violation is grandfathered: escapecheck now passes.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-checks=escapecheck", "./..."}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunCrossPackage: a lock held in one package across a channel
// operation in another is resolved through the program call graph — the
// regression the single-package CallGraph could not see.
func TestRunCrossPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"fx/fx.go": `package fx

import (
	"sync"

	"fixturemod/dep"
)

type S struct {
	mu sync.Mutex
	p  *dep.P
}

func (s *S) Bad() {
	s.mu.Lock()
	s.p.Emit(1)
	s.mu.Unlock()
}
`,
		"dep/dep.go": `package dep

type P struct{ Ch chan int }

func (p *P) Emit(v int) { p.Ch <- v }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks=locksafety", "./fx"}, root, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[locksafety]") || !strings.Contains(out, "channel operations") {
		t.Fatalf("cross-package channel op not detected: %q", out)
	}
}
