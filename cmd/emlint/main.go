// Command emlint runs the repo's own invariant analyzers (package
// internal/analysis) over module packages and fails when any diagnostic
// survives. It is dependency-free: packages are parsed and type-checked
// with go/parser + go/types and a source importer, so it runs anywhere the
// Go toolchain's source tree is installed.
//
// Usage:
//
//	emlint [-checks list] [-list] [patterns...]
//
// Patterns default to ./internal/... ./cmd/... — the whole production
// tree. Exit status is 0 for a clean tree, 1 when diagnostics were
// reported, and 2 on load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "print the available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: emlint [-checks list] [-list] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		var err error
		analyzers, err = analysis.ByName(*checks)
		if err != nil {
			fail(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	root, err := analysis.FindRoot(wd)
	if err != nil {
		fail(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fail(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fail(err)
	}

	var diags []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		diags = append(diags, analysis.Run(pkg, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	for _, d := range diags {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "emlint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "emlint:", err)
	os.Exit(2)
}
