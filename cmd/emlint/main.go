// Command emlint runs the repo's own invariant analyzers (package
// internal/analysis) over module packages and fails when any diagnostic
// survives. It is dependency-free: packages are parsed and type-checked
// with go/parser + go/types and a source importer, so it runs anywhere the
// Go toolchain's source tree is installed.
//
// Usage:
//
//	emlint [-checks list] [-list] [-fix] [-json] [-format mode] [-staleallows]
//	       [-update-baseline] [-escape-report file] [patterns...]
//
// Patterns default to ./internal/... ./cmd/... — the whole production
// tree. Each package is analyzed as a cross-package program: its
// module-local dependencies are loaded with full syntax so the call-graph
// analyzers (locksafety, lockorder, rlockwrite, ctxflow) follow facts
// across package boundaries. -checks picks a subset by name, or — when
// every entry is negated — the full suite minus the named checks
// (-checks=-hotalloc,-maporder); the forms cannot be mixed.
// -staleallows restricts output to the staleallow audit — the
// //emlint:allow directives that no longer suppress anything.
// -update-baseline rewrites lint/escape_baseline.json from the current
// escapecheck violations and exits; -escape-report writes the parsed
// escape/inlining facts of every contract-annotated package to a JSON
// file (the CI artifact uploaded next to emlint-report.json). Output
// modes:
//
//	-format=text    file:line:col: [check] message (default)
//	-format=github  ::error workflow annotations for inline PR comments
//	-format=json    machine-readable diagnostics including suggested fixes
//	-json           shorthand for -format=json
//
// -fix applies the suggested fixes diagnostics carry (non-overlapping
// byte edits, gofmt on every touched file) and is idempotent: a second
// run applies zero edits. Exit status is 0 for a clean tree (or when -fix
// repaired every finding), 1 when diagnostics remain, and 2 on load or
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is the testable driver body: args are the command-line arguments,
// dir anchors module-root discovery, and the exit code is returned
// instead of calling os.Exit.
//
//emlint:allow errdrop -- the driver only prints to the injected stdout/stderr; a failed diagnostic print has no further channel to report on
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "print the available checks and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes (non-overlapping edits, gofmt on touched files)")
	jsonOut := fs.Bool("json", false, "shorthand for -format=json")
	format := fs.String("format", "text", "output mode: text, github, or json")
	staleOnly := fs.Bool("staleallows", false, "report only //emlint:allow directives that no longer suppress anything (runs the full suite to find out)")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite lint/escape_baseline.json from the current escapecheck violations and exit")
	escapeReportPath := fs.String("escape-report", "", "write the parsed escape/inlining report of contract-annotated packages to this JSON file")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: emlint [-checks list] [-list] [-fix] [-json] [-format mode] [-staleallows] [-update-baseline] [-escape-report file] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "github", "json":
	default:
		fmt.Fprintf(stderr, "emlint: unknown -format %q (want text, github, or json)\n", *format)
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		var err error
		analyzers, err = selectChecks(*checks)
		if err != nil {
			fmt.Fprintln(stderr, "emlint:", err)
			return 2
		}
	}
	if *staleOnly {
		// The audit is only meaningful against the checks that actually
		// ran, so the whole suite runs and everything else is filtered.
		analyzers = analysis.All()
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	root, err := analysis.FindRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "emlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "emlint:", err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "emlint:", err)
		return 2
	}

	if *updateBaseline || *escapeReportPath != "" {
		reports, err := collectEscapeReports(loader, paths)
		if err != nil {
			fmt.Fprintln(stderr, "emlint:", err)
			return 2
		}
		if *escapeReportPath != "" {
			if err := writeEscapeReports(*escapeReportPath, reports); err != nil {
				fmt.Fprintln(stderr, "emlint:", err)
				return 2
			}
		}
		if *updateBaseline {
			baseline := analysis.EscapeBaseline{}
			accepted := 0
			for _, rep := range reports {
				for _, fn := range rep.Funcs {
					for _, v := range fn.Violations {
						baseline.Record(rep.Package, fn.Name, v)
						accepted++
					}
				}
			}
			path := filepath.Join(root, analysis.EscapeBaselinePath)
			if err := analysis.SaveEscapeBaseline(path, baseline); err != nil {
				fmt.Fprintln(stderr, "emlint:", err)
				return 2
			}
			fmt.Fprintf(stdout, "emlint: wrote %s: %d accepted violation(s) across %d annotated package(s)\n",
				analysis.EscapeBaselinePath, accepted, len(reports))
			return 0
		}
	}

	var diags []analysis.Diagnostic
	for _, path := range paths {
		prog, err := loader.LoadProgram(path)
		if err != nil {
			fmt.Fprintln(stderr, "emlint:", err)
			return 2
		}
		diags = append(diags, analysis.RunProgram(prog, analyzers)...)
	}
	if *staleOnly {
		var stale []analysis.Diagnostic
		for _, d := range diags {
			if d.Check == analysis.StaleAllow.Name {
				stale = append(stale, d)
			}
		}
		diags = stale
	}

	if *fix {
		res, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, "emlint:", err)
			return 2
		}
		for i, f := range res.Files {
			if rel, err := filepath.Rel(root, f); err == nil {
				res.Files[i] = rel
			}
		}
		fmt.Fprintf(stdout, "emlint: applied %d fix(es) across %d file(s)", res.Applied, len(res.Files))
		if len(res.Files) > 0 {
			fmt.Fprintf(stdout, ": %s", strings.Join(res.Files, " "))
		}
		fmt.Fprintln(stdout)
		if res.Skipped > 0 {
			fmt.Fprintf(stdout, "emlint: skipped %d overlapping fix(es); re-run -fix to apply\n", res.Skipped)
		}
		// Only findings without an applied fix still stand.
		var remaining []analysis.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	// Print module-relative paths so output is stable across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
		for j := range diags[i].Fixes {
			for k := range diags[i].Fixes[j].Edits {
				e := &diags[i].Fixes[j].Edits[k]
				if rel, err := filepath.Rel(root, e.Filename); err == nil {
					e.Filename = rel
				}
			}
		}
	}

	switch *format {
	case "json":
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "emlint:", err)
			return 2
		}
	case "github":
		for _, d := range diags {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column,
				githubEscape(fmt.Sprintf("[%s] %s", d.Check, d.Message)))
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "emlint: %d invariant violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectChecks resolves the -checks spec. A plain comma-separated list
// picks exactly those checks; a list where every entry is negated
// ("-hotalloc,-maporder") runs the whole suite minus the named checks.
// Mixing the two forms is ambiguous and rejected.
func selectChecks(spec string) ([]*analysis.Analyzer, error) {
	var pos, neg []string
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSpace(p)
		if rest, ok := strings.CutPrefix(p, "-"); ok {
			neg = append(neg, rest)
		} else {
			pos = append(pos, p)
		}
	}
	if len(neg) == 0 {
		return analysis.ByName(spec)
	}
	if len(pos) > 0 {
		return nil, fmt.Errorf("-checks %q mixes selections and negations; use one form", spec)
	}
	// Resolve the negated names first so typos are rejected, not silently
	// kept in the suite.
	if _, err := analysis.ByName(strings.Join(neg, ",")); err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(neg))
	for _, n := range neg {
		drop[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range analysis.All() {
		if !drop[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks %q negates every check", spec)
	}
	return out, nil
}

// collectEscapeReports gathers the compiler escape/inlining facts of every
// contract-annotated package among paths. Test files are excluded,
// matching the escapecheck pass (contracts annotate shipped code).
func collectEscapeReports(l *analysis.Loader, paths []string) ([]*analysis.EscapeReport, error) {
	var reports []*analysis.EscapeReport
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		files := make([]*ast.File, 0, len(pkg.Files))
		for _, f := range pkg.Files {
			if strings.HasSuffix(l.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			files = append(files, f)
		}
		rep, err := analysis.CollectEscapeReport(pkg, files)
		if err != nil {
			return nil, err
		}
		if rep != nil {
			reports = append(reports, rep)
		}
	}
	return reports, nil
}

// writeEscapeReports writes the report array (never null) as indented JSON.
func writeEscapeReports(path string, reports []*analysis.EscapeReport) error {
	if reports == nil {
		reports = []*analysis.EscapeReport{}
	}
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// jsonDiagnostic is the stable -json output shape.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
	// HasFix mirrors Fixes so scripted consumers can count repairable
	// findings without materializing the edit payloads.
	HasFix bool                    `json:"has_fix"`
	Fixes  []analysis.SuggestedFix `json:"fixes,omitempty"`
}

// writeJSON emits the diagnostics as a JSON array (never null).
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
			HasFix:  len(d.Fixes) > 0,
			Fixes:   d.Fixes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// githubEscape encodes the characters the workflow-command grammar
// reserves in annotation messages.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
