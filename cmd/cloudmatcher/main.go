// Command cloudmatcher serves the CloudMatcher microservice catalog over
// HTTP — the cloud-native shape of the envisioned Magellan ecosystem
// (Figure 6). Endpoints:
//
//	GET  /services      list the 18 basic + 2 composite services (Table 4)
//	POST /jobs          submit a workflow DAG; returns step-by-step results
//	GET  /healthz       liveness plus per-engine queue/worker state
//	GET  /metrics       Prometheus text exposition (pipeline + engine series)
//	GET  /debug/pprof/  Go profiler endpoints
//
// Example job (self-service Falcon over inline CSVs):
//
//	curl -s localhost:8080/jobs -d '{
//	  "name": "demo", "seed": 1,
//	  "gold": [["a1","b1"]],
//	  "steps": [
//	    {"id":"ua","service":"upload_dataset","args":{"csv":"id,name\na1,acme corp\n","out":"a"}},
//	    {"id":"ub","service":"upload_dataset","args":{"csv":"id,name\nb1,acme corporation\n","out":"b"}},
//	    {"id":"ka","service":"set_key","args":{"table":"a","key":"id"},"after":["ua"]},
//	    {"id":"kb","service":"set_key","args":{"table":"b","key":"id"},"after":["ub"]},
//	    {"id":"f","service":"falcon","args":{"a":"a","b":"b"},"after":["ka","kb"]}
//	  ]}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/cloud"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	batch := flag.Int("batch-workers", 4, "batch engine worker count")
	users := flag.Int("user-workers", 16, "user-interaction engine worker count")
	crowd := flag.Int("crowd-workers", 16, "crowd engine worker count")
	timeout := flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	maxBody := flag.Int64("max-body", 8<<20, "POST /jobs body cap in bytes")
	flag.Parse()

	// One registry shared by the HTTP server, the metamanager, and (via
	// JobContext.Metrics) the pipeline code the services call — so /metrics
	// shows engine state and per-stage timings side by side.
	reg := obs.NewRegistry()
	mm := cloud.NewMetamanager(cloud.NewRegistry(), cloud.EngineConfig{
		BatchWorkers: *batch,
		UserWorkers:  *users,
		CrowdWorkers: *crowd,
		Metrics:      reg,
	})
	defer mm.Close()

	srv := cloud.NewServer(mm,
		cloud.WithMetrics(reg),
		cloud.WithRequestTimeout(*timeout),
		cloud.WithMaxBodySize(*maxBody),
	)
	basic, composite := mm.Registry().Counts()
	fmt.Printf("cloudmatcher: %d basic + %d composite services on %s\n", basic, composite, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "cloudmatcher:", err)
		os.Exit(1)
	}
}
