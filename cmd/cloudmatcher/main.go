// Command cloudmatcher serves the CloudMatcher microservice catalog over
// HTTP — the cloud-native shape of the envisioned Magellan ecosystem
// (Figure 6). Endpoints:
//
//	GET  /services   list the 18 basic + 2 composite services (Table 4)
//	POST /jobs       submit a workflow DAG; returns step-by-step results
//	GET  /healthz    liveness probe
//
// Example job (self-service Falcon over inline CSVs):
//
//	curl -s localhost:8080/jobs -d '{
//	  "name": "demo", "seed": 1,
//	  "gold": [["a1","b1"]],
//	  "steps": [
//	    {"id":"ua","service":"upload_dataset","args":{"csv":"id,name\na1,acme corp\n","out":"a"}},
//	    {"id":"ub","service":"upload_dataset","args":{"csv":"id,name\nb1,acme corporation\n","out":"b"}},
//	    {"id":"ka","service":"set_key","args":{"table":"a","key":"id"},"after":["ua"]},
//	    {"id":"kb","service":"set_key","args":{"table":"b","key":"id"},"after":["ub"]},
//	    {"id":"f","service":"falcon","args":{"a":"a","b":"b"},"after":["ka","kb"]}
//	  ]}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/cloud"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	batch := flag.Int("batch-workers", 4, "batch engine worker count")
	users := flag.Int("user-workers", 16, "user-interaction engine worker count")
	crowd := flag.Int("crowd-workers", 16, "crowd engine worker count")
	flag.Parse()

	mm := cloud.NewMetamanager(cloud.NewRegistry(), cloud.EngineConfig{
		BatchWorkers: *batch,
		UserWorkers:  *users,
		CrowdWorkers: *crowd,
	})
	defer mm.Close()

	basic, composite := mm.Registry().Counts()
	fmt.Printf("cloudmatcher: %d basic + %d composite services on %s\n", basic, composite, *addr)
	if err := http.ListenAndServe(*addr, cloud.NewServer(mm).Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "cloudmatcher:", err)
		os.Exit(1)
	}
}
