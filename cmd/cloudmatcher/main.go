// Command cloudmatcher serves the CloudMatcher microservice catalog over
// HTTP — the cloud-native shape of the envisioned Magellan ecosystem
// (Figure 6). The API is versioned under /v1 (legacy unversioned paths
// answer 308 Permanent Redirect):
//
//	GET  /v1/services      list the 18 basic + 2 composite services (Table 4)
//	POST /v1/jobs          submit a workflow DAG; returns step-by-step results
//	GET  /v1/healthz       liveness plus per-engine queue/worker state
//	GET  /v1/metrics       Prometheus text exposition (pipeline + engine series)
//	GET  /v1/corpus        serving corpora and their stats
//	POST /v1/corpus/add    add/update records in a serving corpus
//	POST /v1/corpus/delete delete records from a serving corpus
//	POST /v1/match         match one record against a serving corpus
//	GET  /debug/pprof/     Go profiler endpoints (unversioned)
//
// Example job (self-service Falcon over inline CSVs):
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "name": "demo", "seed": 1,
//	  "gold": [["a1","b1"]],
//	  "steps": [
//	    {"id":"ua","service":"upload_dataset","args":{"csv":"id,name\na1,acme corp\n","out":"a"}},
//	    {"id":"ub","service":"upload_dataset","args":{"csv":"id,name\nb1,acme corporation\n","out":"b"}},
//	    {"id":"ka","service":"set_key","args":{"table":"a","key":"id"},"after":["ua"]},
//	    {"id":"kb","service":"set_key","args":{"table":"b","key":"id"},"after":["ub"]},
//	    {"id":"f","service":"falcon","args":{"a":"a","b":"b"},"after":["ka","kb"]}
//	  ]}'
//
// Example incremental serving session against the default corpus:
//
//	curl -s localhost:8080/v1/corpus/add -d '{
//	  "corpus": "default",
//	  "records": [{"id":"a1","attrs":{"name":"acme corp"}}]}'
//	curl -s localhost:8080/v1/match -d '{
//	  "corpus": "default",
//	  "record": {"id":"q","attrs":{"name":"acme corporation"}}}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/cloud"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	batch := flag.Int("batch-workers", 4, "batch engine worker count")
	users := flag.Int("user-workers", 16, "user-interaction engine worker count")
	crowd := flag.Int("crowd-workers", 16, "crowd engine worker count")
	timeout := flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	maxBody := flag.Int64("max-body", 8<<20, "request body cap in bytes")
	corpus := flag.String("corpus", "default", "name of the built-in serving corpus (empty disables /v1/corpus and /v1/match)")
	matchWorkers := flag.Int("match-workers", 0, "match pool worker count (0 = GOMAXPROCS; reads are lock-free, so workers scale with cores)")
	matchQueue := flag.Int("match-queue", 0, "match queue capacity before 429s (0 = 4x workers)")
	matchLimit := flag.Int("match-limit", 0, "cap /v1/match results to the n best-scoring pairs (0 = all)")
	compactAfter := flag.Int("compact-after", 0, "tombstones before the corpus compacts and republishes its snapshot (0 = default 1024, -1 = never)")
	flag.Parse()

	// One registry shared by the HTTP server, the metamanager, and (via
	// JobContext.Metrics) the pipeline code the services call — so /metrics
	// shows engine state and per-stage timings side by side.
	reg := obs.NewRegistry()
	mm := cloud.NewMetamanager(cloud.NewRegistry(), cloud.EngineConfig{
		BatchWorkers: *batch,
		UserWorkers:  *users,
		CrowdWorkers: *crowd,
		Metrics:      reg,
	})
	defer mm.Close()

	opts := []cloud.ServerOption{
		cloud.WithMetrics(reg),
		cloud.WithRequestTimeout(*timeout),
		cloud.WithMaxBodySize(*maxBody),
	}
	if *corpus != "" {
		c := serve.NewCorpus(serve.WithMetrics(reg),
			serve.WithLimit(*matchLimit), serve.WithCompactAfter(*compactAfter))
		corpora := serve.NewRegistry()
		if err := corpora.Register(*corpus, c, serve.NewPool(c, *matchWorkers, *matchQueue)); err != nil {
			fmt.Fprintln(os.Stderr, "cloudmatcher:", err)
			os.Exit(1)
		}
		defer corpora.Close()
		opts = append(opts, cloud.WithCorpora(corpora))
	}

	srv := cloud.NewServer(mm, opts...)
	basic, composite := mm.Registry().Counts()
	fmt.Printf("cloudmatcher: %d basic + %d composite services on %s\n", basic, composite, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "cloudmatcher:", err)
		os.Exit(1)
	}
}
