package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/table"
)

func TestRunEndToEnd(t *testing.T) {
	task, err := datagen.Generate(datagen.Spec{
		Name: "cli", Domain: datagen.BookDomain(),
		SizeA: 200, SizeB: 200, MatchFraction: 0.5, Typo: 0.2, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.csv")
	bPath := filepath.Join(dir, "b.csv")
	goldPath := filepath.Join(dir, "gold.csv")
	outPath := filepath.Join(dir, "matches.csv")
	if err := task.A.WriteCSVFile(aPath); err != nil {
		t.Fatal(err)
	}
	if err := task.B.WriteCSVFile(bPath); err != nil {
		t.Fatal(err)
	}
	gold := table.New("gold", table.StringSchema("ltable_id", "rtable_id"))
	for _, p := range task.Gold.Pairs() {
		gold.MustAppend(table.String(p[0]), table.String(p[1]))
	}
	if err := gold.WriteCSVFile(goldPath); err != nil {
		t.Fatal(err)
	}

	metricsPath := filepath.Join(dir, "metrics.json")
	if err := run(aPath, bPath, "id", goldPath, outPath, 300, 1, 0, metricsPath); err != nil {
		t.Fatal(err)
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"em_stage_seconds", `"stage": "block"`, `"stage": "cv"`, `"stage": "predict"`, "em_block_pairs_emitted_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}

	out, err := table.ReadCSVFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no matches written")
	}
	tp := 0
	for i := 0; i < out.Len(); i++ {
		if task.Gold.IsMatch(out.Get(i, "ltable_id").AsString(), out.Get(i, "rtable_id").AsString()) {
			tp++
		}
	}
	if frac := float64(tp) / float64(out.Len()); frac < 0.8 {
		t.Errorf("CLI output precision %.3f too low", frac)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "id", "", "out.csv", 10, 1, 0, ""); err == nil {
		t.Fatal("want missing-flags error")
	}
	dir := t.TempDir()
	bogus := filepath.Join(dir, "missing.csv")
	if err := run(bogus, bogus, "id", bogus, filepath.Join(dir, "o.csv"), 10, 1, 0, ""); err == nil {
		t.Fatal("want file-not-found error")
	}
	// Bad key column.
	aPath := filepath.Join(dir, "a.csv")
	if err := os.WriteFile(aPath, []byte("id,name\n1,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(aPath, aPath, "nokey", aPath, filepath.Join(dir, "o.csv"), 10, 1, 0, ""); err == nil ||
		!strings.Contains(err.Error(), "key") {
		t.Fatalf("want key error, got %v", err)
	}
}
