// Command pymatcher runs the PyMatcher development-stage guide on two CSV
// files and writes the predicted matches as CSV. Labels come from a gold
// CSV of known matches (the simulated user), of which only a sample is
// consumed — exactly how a real session would label a few hundred pairs.
//
//	pymatcher -a a.csv -b b.csv -key id -gold gold.csv -out matches.csv
//
// The gold CSV must have columns ltable_id,rtable_id. With -metrics PATH
// the run records per-stage timings and counters into a live registry and
// writes the snapshot as JSON ("-" for stdout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/table"
)

func main() {
	aPath := flag.String("a", "", "left table CSV")
	bPath := flag.String("b", "", "right table CSV")
	key := flag.String("key", "id", "key column present in both tables")
	goldPath := flag.String("gold", "", "gold matches CSV (ltable_id,rtable_id)")
	outPath := flag.String("out", "matches.csv", "output CSV of predicted matches")
	sample := flag.Int("sample", 400, "labeled sample size")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker goroutines for blocking, feature extraction, and CV; 0 means GOMAXPROCS")
	metricsPath := flag.String("metrics", "", "write per-stage metrics snapshot as JSON to this path (\"-\" for stdout)")
	flag.Parse()

	if err := run(*aPath, *bPath, *key, *goldPath, *outPath, *sample, *seed, *workers, *metricsPath); err != nil {
		fmt.Fprintln(os.Stderr, "pymatcher:", err)
		os.Exit(1)
	}
}

func run(aPath, bPath, key, goldPath, outPath string, sample int, seed int64, workers int, metricsPath string) error {
	if aPath == "" || bPath == "" || goldPath == "" {
		return fmt.Errorf("-a, -b, and -gold are required")
	}
	a, err := table.ReadCSVFile(aPath)
	if err != nil {
		return err
	}
	b, err := table.ReadCSVFile(bPath)
	if err != nil {
		return err
	}
	if err := a.SetKey(key); err != nil {
		return err
	}
	if err := b.SetKey(key); err != nil {
		return err
	}
	goldTab, err := table.ReadCSVFile(goldPath)
	if err != nil {
		return err
	}
	gold := label.NewGold(nil)
	for i := 0; i < goldTab.Len(); i++ {
		gold.Add(goldTab.Get(i, "ltable_id").AsString(), goldTab.Get(i, "rtable_id").AsString())
	}
	oracle := label.NewOracle(gold)

	s, err := core.NewSession(a, b, seed)
	if err != nil {
		return err
	}
	s.Workers = workers
	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
		s.Metrics = reg
	}
	fmt.Printf("features: %d auto-generated\n", s.Features.Len())

	blockers := []block.Blocker{
		block.WholeTupleOverlapBlocker{MinOverlap: 2, Workers: workers, Metrics: s.Metrics},
		block.WholeTupleOverlapBlocker{MinOverlap: 1, Workers: workers, Metrics: s.Metrics},
	}
	best, reports, err := s.TryBlockers(blockers, oracle, 10)
	if err != nil {
		return err
	}
	for i, r := range reports {
		marker := " "
		if i == best {
			marker = "*"
		}
		fmt.Printf("%s blocker %-32s candidates=%-8d confirmed-missed=%d\n", marker, r.Name, r.Candidates, r.LikelyMissed)
	}
	cand, err := s.Block(blockers[best])
	if err != nil {
		return err
	}
	fmt.Printf("candidate set: %d pairs\n", cand.Len())

	if _, err := s.SampleAndLabel(sample, oracle); err != nil {
		return err
	}
	cv, err := s.SelectMatcher(ml.DefaultMatcherFactories(seed), 5)
	if err != nil {
		return err
	}
	for _, r := range cv {
		fmt.Printf("  cv %-22s P=%.3f R=%.3f F1=%.3f\n", r.Name, r.Precision, r.Recall, r.F1)
	}
	var factory func() ml.Classifier
	for _, f := range ml.DefaultMatcherFactories(seed) {
		if f().Name() == cv[0].Name {
			factory = f
		}
	}
	matches, _, err := s.TrainAndPredict(factory)
	if err != nil {
		return err
	}
	conf := core.Evaluate(matches, gold)
	fmt.Printf("selected %s; predictions: %d matches; vs gold: %s\n", cv[0].Name, matches.Len(), conf)
	fmt.Printf("labeling effort: %s\n", oracle.Stats())
	if err := matches.WriteCSVFile(outPath); err != nil {
		return err
	}
	if reg != nil {
		data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if metricsPath == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(metricsPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsPath)
	}
	return nil
}
