// Command benchem regenerates the paper's evaluation tables and figures
// from the live system (see DESIGN.md's per-experiment index):
//
//	benchem -exp table1        PyMatcher deployments vs incumbents (Table 1)
//	benchem -exp table2        CloudMatcher deployments (Table 2)
//	benchem -exp table3        tool inventory per guide step (Table 3)
//	benchem -exp table4        CloudMatcher service catalog (Table 4)
//	benchem -exp guide         one full Figure 2 guide run
//	benchem -exp concurrency   CloudMatcher 0.1 vs 1.0 (Figure 5)
//	benchem -exp smurf         Falcon vs Smurf labeling effort (§5.3)
//	benchem -exp mlrules       ML/rules/ML+rules ablation (§6)
//	benchem -exp blockers      blocker recall/reduction ablation
//	benchem -exp parallel      Workers=1 vs multicore regression bench (BENCH_parallel.json)
//	benchem -exp obsbench      no-op vs live metrics overhead bench (BENCH_obs.json)
//	benchem -exp tokens        string vs interned similarity kernels (BENCH_tokens.json)
//	benchem -exp serve         incremental serving core QPS/latency bench (BENCH_serve.json)
//	benchem -exp all           everything above
//
// With -metrics PATH the guide experiment records per-stage timings into a
// live registry and writes the snapshot as JSON ("-" for stdout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// parseIntList parses a comma-separated list of positive ints ("1,2,4,8").
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid list entry %q (want positive integers)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// writeMetricsSnapshot dumps a registry's per-stage timings as indented
// JSON to path, or to stdout when path is "-".
func writeMetricsSnapshot(reg *obs.Registry, path string) error {
	data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1|table2|table3|table4|guide|concurrency|smurf|mlrules|blockers|parallel|obsbench|tokens|serve|all)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker goroutines for parallelized stages; 0 means GOMAXPROCS")
	benchout := flag.String("benchout", "BENCH_parallel.json", "output path for the parallel bench JSON")
	scaleWorkers := flag.String("scaleworkers", "1,2,4,8", "comma-separated worker counts for the parallel scaling sweep")
	scaleN := flag.String("scalen", "1000,10000,100000", "comma-separated input sizes for the parallel scaling sweep")
	requireCores := flag.Bool("requirecores", false, "fail the parallel experiment when GOMAXPROCS < 2 instead of just warning")
	minSpeedup := flag.Float64("minspeedup", 1.5, "fail the parallel experiment when speedup at workers=4 on the largest n falls below this (enforced only when GOMAXPROCS >= 4; 0 disables)")
	obsout := flag.String("obsout", "BENCH_obs.json", "output path for the metrics-overhead bench JSON")
	tokensout := flag.String("tokensout", "BENCH_tokens.json", "output path for the token-interning bench JSON")
	tokensn := flag.Int("tokensn", 1000, "records per side (and candidate pairs) for the tokens bench workloads")
	serveout := flag.String("serveout", "BENCH_serve.json", "output path for the serving-core bench JSON")
	serven := flag.Int("serven", 5000, "corpus size for the serve bench")
	servequeries := flag.Int("servequeries", 2000, "query count per phase for the serve bench")
	serveWorkers := flag.String("serveworkers", "1,2,4,8", "comma-separated match-worker counts for the serve reader-scaling sweep")
	serveMinSpeedup := flag.Float64("serveminspeedup", 1.5, "fail the serve experiment when query-only QPS scaling at workers=4 falls below this (enforced only when GOMAXPROCS >= 4; 0 disables)")
	metricsPath := flag.String("metrics", "", "write the guide run's per-stage metrics snapshot as JSON to this path (\"-\" for stdout)")
	flag.Parse()

	run := func(name string) error {
		switch name {
		case "table1":
			fmt.Println("== Table 1: PyMatcher deployments (ML workflow vs incumbent rules) ==")
			rows, err := experiments.RunTable1(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable1(rows))
		case "table2":
			fmt.Println("== Table 2: CloudMatcher deployments ==")
			rows, err := experiments.RunTable2(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable2(rows))
		case "table3":
			fmt.Println("== Table 3: tools per step of the PyMatcher guide ==")
			fmt.Print(experiments.FormatTable3(experiments.Table3()))
		case "table4":
			fmt.Println("== Table 4: CloudMatcher services ==")
			fmt.Print(experiments.FormatTable4())
		case "guide":
			fmt.Println("== Figure 2: the PyMatcher how-to guide, end to end ==")
			var reg *obs.Registry
			if *metricsPath != "" {
				reg = obs.NewRegistry()
			}
			// A nil *Registry must stay a nil Recorder interface, so pass
			// it through obs.Or only when live.
			var rec obs.Recorder
			if reg != nil {
				rec = reg
			}
			res, err := experiments.RunGuideObserved(2000, 2000, 600, 600, *seed, *workers, rec)
			if err != nil {
				return err
			}
			fmt.Printf("down-sampled to %d/%d rows\n", res.DownsampledA, res.DownsampledB)
			fmt.Printf("blocker chosen: %s -> %d candidates\n", res.BlockerChosen, res.Candidates)
			fmt.Printf("cross-validation winner: %s (F1 %.2f)\n", res.CVWinner, res.CVF1)
			fmt.Printf("final accuracy: P %.1f%%  R %.1f%%  (%d questions)\n",
				100*res.Precision, 100*res.Recall, res.Questions)
			if reg != nil {
				if err := writeMetricsSnapshot(reg, *metricsPath); err != nil {
					return err
				}
			}
		case "concurrency":
			fmt.Println("== Figure 5: serial CloudMatcher 0.1 vs concurrent 1.0 ==")
			res, err := experiments.RunConcurrency(6, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatConcurrency(res))
		case "smurf":
			fmt.Println("== §5.3: Smurf labeling reduction vs Falcon ==")
			rows, err := experiments.RunSmurfComparison(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSmurf(rows))
		case "mlrules":
			fmt.Println("== §6 ablation: ML only vs rules only vs ML+rules ==")
			rows, err := experiments.RunMLRulesAblation(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatMLRules(rows))
		case "blockers":
			fmt.Println("== ablation: blocker recall vs reduction ==")
			rows, err := experiments.RunBlockerAblation(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatBlockers(rows))
		case "parallel":
			fmt.Println("== parallel execution layer: workers x n scaling sweep ==")
			// A 1-core box cannot show scaling: speedups recorded there are
			// noise around 1.0, not evidence. Warn loudly, or refuse when the
			// caller demands real cores (-requirecores, the CI setting).
			if runtime.GOMAXPROCS(0) < 2 {
				if *requireCores {
					return fmt.Errorf("GOMAXPROCS=%d < 2 and -requirecores is set: this box cannot measure scaling", runtime.GOMAXPROCS(0))
				}
				fmt.Fprintf(os.Stderr, "benchem: warning: GOMAXPROCS=%d < 2 — speedup columns cannot show scaling on this box (cores_ok=false in %s)\n",
					runtime.GOMAXPROCS(0), *benchout)
			}
			ws, err := parseIntList(*scaleWorkers)
			if err != nil {
				return fmt.Errorf("-scaleworkers: %w", err)
			}
			ns, err := parseIntList(*scaleN)
			if err != nil {
				return fmt.Errorf("-scalen: %w", err)
			}
			res, err := experiments.RunParallelBench(*seed, ws, ns)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatParallelBench(res))
			data, err := res.MarshalBenchJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*benchout, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchout)
			// Divergence from the Workers=1 output is a correctness bug at
			// any core count: fail the run so CI catches it.
			if div := res.Diverged(); len(div) > 0 {
				return fmt.Errorf("parallel outputs diverged from Workers=1 on: %v", div)
			}
			// The scaling gate only means something with real cores behind
			// the workers; with fewer the sweep still pins determinism and
			// allocs, but speedup is physically capped at ~1.0.
			if *minSpeedup > 0 && runtime.GOMAXPROCS(0) >= 4 {
				for _, name := range []string{"simjoin_jaccard", "forest_fit_32trees"} {
					if s := res.SpeedupAt(name, 4); s > 0 && s < *minSpeedup {
						return fmt.Errorf("%s speedup at workers=4 is %.2fx, below the %.2fx regression floor", name, s, *minSpeedup)
					}
				}
			}
		case "obsbench":
			fmt.Println("== observability layer: no-op vs live recorder overhead ==")
			res, err := experiments.RunObsBench(*seed, *workers, *benchout)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatObsBench(res))
			data, err := res.MarshalBenchJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*obsout, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *obsout)
		case "tokens":
			fmt.Println("== token interning: string kernels vs integer kernels ==")
			res, err := experiments.RunTokensBench(*seed, *workers, *tokensn, *benchout)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTokensBench(res))
			data, err := res.MarshalBenchJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*tokensout, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *tokensout)
			// A divergence means the interned kernels broke bit-identity
			// with the string path: fail the run so CI catches it.
			if div := res.Diverged(); len(div) > 0 {
				return fmt.Errorf("interned kernels diverged from string path on: %v", div)
			}
		case "serve":
			fmt.Println("== serving core: sustained QPS, tail latency, and backpressure ==")
			if runtime.GOMAXPROCS(0) < 2 {
				fmt.Fprintf(os.Stderr, "benchem: warning: GOMAXPROCS=%d < 2 — the reader-scaling cells cannot show scaling on this box (cores_ok=false in %s)\n",
					runtime.GOMAXPROCS(0), *serveout)
			}
			sws, err := parseIntList(*serveWorkers)
			if err != nil {
				return fmt.Errorf("-serveworkers: %w", err)
			}
			res, err := experiments.RunServeBench(*seed, *workers, *serven, *servequeries, sws)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatServeBench(res))
			data, err := res.MarshalBenchJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*serveout, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *serveout)
			// Divergence between the incrementally-maintained corpus and a
			// from-scratch rebuild is a correctness bug: fail the run.
			if !res.Identical {
				return fmt.Errorf("incremental corpus diverged from from-scratch rebuild after the ingest phases")
			}
			// So is divergence between the flat batch kernel and the
			// pointer-walking classifier: bit-identity is the contract that
			// made the flattening a pure performance change.
			if !res.FlatIdentical {
				return fmt.Errorf("flat forest scores diverged from the pointer classifier path")
			}
			if res.Overload.Rejected == 0 {
				return fmt.Errorf("overload burst of %d was fully absorbed — backpressure never engaged", res.Overload.Submitted)
			}
			// The reader-scaling gate only means something with real cores
			// behind the match workers; a 1-core box caps speedup at ~1.0.
			if *serveMinSpeedup > 0 && runtime.GOMAXPROCS(0) >= 4 {
				if s := res.ScalingAt(4); s > 0 && s < *serveMinSpeedup {
					return fmt.Errorf("query-only QPS scaling at workers=4 is %.2fx, below the %.2fx regression floor", s, *serveMinSpeedup)
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	var names []string
	if *exp == "all" {
		names = []string{"table3", "table4", "guide", "table1", "smurf", "mlrules", "blockers", "parallel", "obsbench", "tokens", "serve", "concurrency", "table2"}
	} else {
		names = []string{*exp}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "benchem: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
