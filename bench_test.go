// Benchmarks regenerating the paper's evaluation artifacts — one benchmark
// per table and figure (see DESIGN.md's per-experiment index). Each
// benchmark runs a reduced-scale version of its experiment per iteration
// and reports the headline quality numbers as custom metrics; the full-
// scale tables are produced by cmd/benchem and recorded in EXPERIMENTS.md.
//
// Run with: go test -bench=. -benchmem .
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

// printOnce prints a rendered table the first time a benchmark produces
// it, so `go test -bench` output contains the regenerated rows.
var printOnce sync.Map

func printTable(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n--- %s ---\n%s\n", key, s)
	}
}

// BenchmarkTable1PyMatcherDeployments regenerates Table 1 at reduced scale:
// one representative deployment (Land Use) per iteration, PyMatcher ML
// workflow vs the incumbent rule-only solution.
func BenchmarkTable1PyMatcherDeployments(b *testing.B) {
	d := datagen.Table1Deployments(1)[2] // Land Use (UW)
	d.Spec.SizeA, d.Spec.SizeB = 800, 800
	var last experiments.Table1Row
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunTable1Deployment(d, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(last.MLRecall, "ML-recall")
	b.ReportMetric(last.BaseRecall, "incumbent-recall")
	b.ReportMetric(last.MLPrecision, "ML-precision")
	printTable("Table 1 (Land Use row, reduced scale)", experiments.FormatTable1([]experiments.Table1Row{last}))
}

// BenchmarkTable2CloudMatcherTasks regenerates Table 2 at reduced scale:
// the smallest deployment (members) per iteration.
func BenchmarkTable2CloudMatcherTasks(b *testing.B) {
	var spec datagen.TaskSpec
	for _, ts := range datagen.Table2Tasks(1) {
		if ts.Spec.Name == "members" {
			spec = ts
		}
	}
	var last experiments.Table2Row
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunTable2Task(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(last.Precision, "precision")
	b.ReportMetric(last.Recall, "recall")
	b.ReportMetric(float64(last.Questions), "questions")
	printTable("Table 2 (members row)", experiments.FormatTable2([]experiments.Table2Row{last}))
}

// BenchmarkTable3ToolInventory regenerates Table 3 (the live tool
// inventory per guide step); it is cheap and mostly documents the count.
func BenchmarkTable3ToolInventory(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for _, r := range experiments.Table3() {
			total += len(r.Tools)
		}
	}
	b.ReportMetric(float64(total), "tools")
	printTable("Table 3", experiments.FormatTable3(experiments.Table3()))
}

// BenchmarkTable4ServiceCatalog regenerates Table 4 from the live service
// registry.
func BenchmarkTable4ServiceCatalog(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.FormatTable4()
	}
	printTable("Table 4", out)
}

// BenchmarkFigure2GuideWorkflow runs the full Figure 2 guide (down-sample,
// blocker selection, CV matcher selection, predict) per iteration.
func BenchmarkFigure2GuideWorkflow(b *testing.B) {
	var last *experiments.GuideResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunGuide(800, 800, 300, 300, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Precision, "precision")
	b.ReportMetric(last.Recall, "recall")
	b.ReportMetric(last.CVF1, "cv-F1")
	printTable("Figure 2 guide", fmt.Sprintf(
		"downsampled %d/%d, blocker %s, %d candidates, CV winner %s (F1 %.2f), P %.2f R %.2f, %d questions\n",
		last.DownsampledA, last.DownsampledB, last.BlockerChosen, last.Candidates,
		last.CVWinner, last.CVF1, last.Precision, last.Recall, last.Questions))
}

// BenchmarkFigure3FalconWorkflow runs the end-to-end Falcon self-service
// workflow (Figure 3) on the members task per iteration.
func BenchmarkFigure3FalconWorkflow(b *testing.B) {
	var spec datagen.TaskSpec
	for _, ts := range datagen.Table2Tasks(1) {
		if ts.Spec.Name == "members" {
			spec = ts
		}
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2Task(spec, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5ConcurrentWorkflows compares serial CloudMatcher 0.1
// against the concurrent 1.0 metamanager per iteration.
func BenchmarkFigure5ConcurrentWorkflows(b *testing.B) {
	var last *experiments.ConcurrencyResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConcurrency(3, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Speedup, "speedup-x")
	printTable("Figure 5", experiments.FormatConcurrency(last))
}

// BenchmarkSmurfLabelingReduction regenerates the §5.3 Smurf-vs-Falcon
// labeling comparison per iteration (one task).
func BenchmarkSmurfLabelingReduction(b *testing.B) {
	var rows []experiments.SmurfRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunSmurfComparison(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	var mean float64
	for _, r := range rows {
		mean += r.Reduction
	}
	mean /= float64(len(rows))
	b.ReportMetric(mean, "mean-reduction")
	printTable("Smurf vs Falcon", experiments.FormatSmurf(rows))
}

// BenchmarkAblationMLPlusRules runs the §6 ML/rules/ML+rules ablation per
// iteration.
func BenchmarkAblationMLPlusRules(b *testing.B) {
	var rows []experiments.MLRulesRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunMLRulesAblation(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.F1, r.Workflow+"-F1")
	}
	printTable("ML+rules ablation", experiments.FormatMLRules(rows))
}

// BenchmarkAblationBlockers runs the blocker recall/reduction sweep per
// iteration.
func BenchmarkAblationBlockers(b *testing.B) {
	var rows []experiments.BlockerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunBlockerAblation(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Blocker ablation", experiments.FormatBlockers(rows))
}

// BenchmarkFigure4RuleExtraction measures blocking-rule extraction from a
// trained forest (Figure 4's operation) in isolation.
func BenchmarkFigure4RuleExtraction(b *testing.B) {
	// Reuse the members task's Falcon artifacts once, then time just the
	// extraction path via a fresh small run per iteration would be too
	// coarse; instead regenerate the whole rule-learning stage.
	var spec datagen.TaskSpec
	for _, ts := range datagen.Table2Tasks(1) {
		if ts.Spec.Name == "members" {
			spec = ts
		}
	}
	spec.Spec.SizeA, spec.Spec.SizeB = 200, 200
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2Task(spec, 3); err != nil {
			b.Fatal(err)
		}
	}
}
