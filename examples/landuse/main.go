// Land Use: the "saving the Amazon forest" application of the paper's
// Appendix B. Two ranch registries (government records vs slaughterhouse
// supplier lists) must be matched so that cattle bought from a compliant
// ranch can be traced back through resales to ranches with deforestation.
// PyMatcher's ML workflow is compared against the incumbent vendor
// solution (conservative exact-match rules), reproducing the paper's
// "much higher recall ... slightly reducing precision" result, and the
// matches are then used to trace supply chains back to "bad" ranches.
//
// Run with: go run ./examples/landuse
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/rules"
	"repro/internal/table"
)

func main() {
	// Government registry (A) vs slaughterhouse supplier list (B), with
	// the messy transcription Appendix B describes.
	task, err := datagen.Generate(datagen.Spec{
		Name: "ranches", Domain: datagen.RanchDomain(),
		SizeA: 1500, SizeB: 1500, MatchFraction: 0.4, Typo: 0.35, Missing: 0.1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	oracle := label.NewOracle(task.Gold)

	s, err := core.NewSession(task.A, task.B, 7)
	must(err)
	_, err = s.Block(block.WholeTupleOverlapBlocker{MinOverlap: 2})
	must(err)
	_, err = s.SampleAndLabel(500, oracle)
	must(err)

	// PyMatcher's workflow: a random forest over auto-generated features.
	mlMatches, _, err := s.TrainAndPredict(func() ml.Classifier { return &ml.RandomForest{Seed: 7} })
	must(err)
	mlConf := core.Evaluate(mlMatches, task.Gold)

	// The company solution the team had used for three years: exact
	// name + exact municipality.
	var rs rules.RuleSet
	rs.Add(rules.MustParse("incumbent", "exact_name >= 1 AND exact_municipality >= 1"))
	incumbent, err := core.NewRuleMatcher(rs, s.Features.Names())
	must(err)
	baseMatches, _, err := s.TrainAndPredict(func() ml.Classifier { return incumbent })
	must(err)
	baseConf := core.Evaluate(baseMatches, task.Gold)

	fmt.Println("matching government registry against supplier list:")
	fmt.Printf("  incumbent rules:  P %5.1f%%  R %5.1f%%  F1 %5.1f%%\n",
		100*baseConf.Precision(), 100*baseConf.Recall(), 100*baseConf.F1())
	fmt.Printf("  PyMatcher (RF):   P %5.1f%%  R %5.1f%%  F1 %5.1f%%\n",
		100*mlConf.Precision(), 100*mlConf.Recall(), 100*mlConf.F1())

	// With ranches linked across registries, trace supply chains: mark
	// 5% of registry ranches as deforesting, simulate resale chains among
	// supplier-list ranches, and count how many chains each solution can
	// flag as tainted. Higher match recall -> more tainted chains caught.
	rng := rand.New(rand.NewSource(99))
	bad := map[string]bool{}
	for i := 0; i < task.A.Len(); i++ {
		if rng.Float64() < 0.05 {
			bad[task.A.Get(i, "id").AsString()] = true
		}
	}
	chains := makeChains(task.B.Len(), 400, rng)

	fmt.Printf("\nsupply-chain audit (%d chains, %d deforesting ranches):\n", len(chains), len(bad))
	fmt.Printf("  incumbent flags:  %d tainted chains\n", taintedChains(chains, baseMatches, bad))
	fmt.Printf("  PyMatcher flags:  %d tainted chains\n", taintedChains(chains, mlMatches, bad))
	fmt.Println("\nhigher matching recall directly translates into more complete")
	fmt.Println("deforestation tracing — the impact Appendix B reports.")
}

// makeChains builds resale chains of supplier-list ranch indices: each
// chain is a path bN -> bM -> ... -> slaughterhouse.
func makeChains(nRanches, nChains int, rng *rand.Rand) [][]string {
	chains := make([][]string, nChains)
	for c := range chains {
		hops := 2 + rng.Intn(3)
		chain := make([]string, hops)
		for h := range chain {
			chain[h] = fmt.Sprintf("b%d", rng.Intn(nRanches))
		}
		chains[c] = chain
	}
	return chains
}

// taintedChains counts chains containing any supplier ranch whose matched
// registry ranch is deforesting.
func taintedChains(chains [][]string, matches *table.Table, bad map[string]bool) int {
	// matched maps supplier id -> registry id.
	matched := map[string]string{}
	for i := 0; i < matches.Len(); i++ {
		matched[matches.Get(i, "rtable_id").AsString()] = matches.Get(i, "ltable_id").AsString()
	}
	count := 0
	for _, chain := range chains {
		for _, rid := range chain {
			if bad[matched[rid]] {
				count++
				break
			}
		}
	}
	return count
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
