// Self-service EM: a lay user matches two restaurant tables through
// CloudMatcher's Falcon workflow (Figures 3-5). The user never writes a
// rule or picks a model — they only answer match/no-match questions, here
// simulated by a Mechanical Turk crowd with per-answer cost and latency.
// The run prints the learned blocking rules (Figure 4), the question
// count, the simulated crowd bill, and the final accuracy: the columns of
// Table 2.
//
// Run with: go run ./examples/selfservice
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datagen"
	"repro/internal/falcon"
	"repro/internal/label"
	"repro/internal/table"
)

func main() {
	task, err := datagen.Generate(datagen.Spec{
		Name: "restaurants", Domain: datagen.RestaurantDomain(),
		SizeA: 800, SizeB: 800, MatchFraction: 0.45, Typo: 0.25, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The lay user is a simulated crowd: 3 workers per question at 2
	// cents each, 10% per-worker error, majority vote.
	crowd := label.NewCrowd(task.Gold, 3)
	budget := label.NewBudgeted(crowd, 1200) // CloudMatcher's question cap

	cat := table.NewCatalog()
	res, err := falcon.Run(task.A, task.B, budget, cat, falcon.Config{SampleSize: 1500, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("learned %d candidate blocking rules; %d confirmed precise:\n",
		res.CandidateRules.Len(), res.BlockingRules.Len())
	for _, r := range res.BlockingRules.Rules {
		fmt.Printf("  drop pair if %s\n", r)
	}
	fmt.Printf("\ncandidate set: %d pairs (cross product would be %d)\n",
		res.Candidates.Len(), task.A.Len()*task.B.Len())

	tp := 0
	for i := 0; i < res.Matches.Len(); i++ {
		if task.Gold.IsMatch(res.Matches.Get(i, "ltable_id").AsString(), res.Matches.Get(i, "rtable_id").AsString()) {
			tp++
		}
	}
	p := float64(tp) / float64(res.Matches.Len())
	r := float64(tp) / float64(task.Gold.Len())
	st := crowd.Stats()
	fmt.Printf("\npredicted %d matches  P %.1f%%  R %.1f%%\n", res.Matches.Len(), 100*p, 100*r)
	fmt.Printf("crowd effort: %d questions, $%.2f, ~%s of turnaround\n",
		st.Questions, st.CostUSD, st.Elapsed.Round(time.Hour))
	fmt.Printf("machine time: %s\n", res.MachineTime.Round(time.Millisecond))
	fmt.Printf("question breakdown: blocking %d, rule review %d, matching %d\n",
		res.BlockingQuestions, res.RuleQuestions, res.MatchingQuestions)
}
