// Microservices: the envisioned cloud-native Magellan ecosystem of
// Figure 6. An in-process CloudMatcher server is started on a local port;
// a client then lists its service catalog over HTTP and submits a
// self-service EM job as a JSON DAG, just as a cloud deployment would.
//
// Run with: go run ./examples/microservices
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/cloud"
	"repro/internal/datagen"
)

func main() {
	mm := cloud.NewMetamanager(cloud.NewRegistry(), cloud.EngineConfig{})
	defer mm.Close()
	srv := httptest.NewServer(cloud.NewServer(mm).Handler())
	defer srv.Close()
	fmt.Println("cloudmatcher listening at", srv.URL)

	// 1. Discover the service catalog.
	resp, err := http.Get(srv.URL + "/v1/services")
	must(err)
	var services []map[string]any
	must(json.NewDecoder(resp.Body).Decode(&services))
	resp.Body.Close()
	fmt.Printf("catalog: %d services, e.g.:\n", len(services))
	for _, s := range services[:5] {
		fmt.Printf("  %-26s [%s]\n", s["name"], s["kind"])
	}

	// 2. Generate a small books workload and ship it as CSV payloads.
	task, err := datagen.Generate(datagen.Spec{
		Name: "books", Domain: datagen.BookDomain(),
		SizeA: 300, SizeB: 300, MatchFraction: 0.5, Typo: 0.2, Seed: 5,
	})
	must(err)
	var csvA, csvB strings.Builder
	must(task.A.WriteCSV(&csvA))
	must(task.B.WriteCSV(&csvB))

	// 3. Submit a Falcon job as a JSON DAG. The gold matches power the
	// simulated labeler on the server side.
	job := map[string]any{
		"name": "books-demo",
		"seed": 5,
		"gold": task.Gold.Pairs(),
		"steps": []map[string]any{
			{"id": "ua", "service": "upload_dataset", "args": map[string]any{"csv": csvA.String(), "out": "a"}},
			{"id": "ub", "service": "upload_dataset", "args": map[string]any{"csv": csvB.String(), "out": "b"}},
			{"id": "ka", "service": "set_key", "args": map[string]any{"table": "a", "key": "id"}, "after": []string{"ua"}},
			{"id": "kb", "service": "set_key", "args": map[string]any{"table": "b", "key": "id"}, "after": []string{"ub"}},
			{"id": "falcon", "service": "falcon", "args": map[string]any{"a": "a", "b": "b", "sample_size": 600},
				"after": []string{"ka", "kb"}},
		},
	}
	body, err := json.Marshal(job)
	must(err)
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	must(err)
	defer resp.Body.Close()

	var result struct {
		Name  string `json:"name"`
		Error string `json:"error"`
		Steps []struct {
			Step   string `json:"step"`
			Output string `json:"output"`
			Error  string `json:"error"`
		} `json:"steps"`
		Questions int     `json:"questions"`
		CostUSD   float64 `json:"cost_usd"`
	}
	must(json.NewDecoder(resp.Body).Decode(&result))
	if result.Error != "" {
		log.Fatal("job failed: ", result.Error)
	}
	fmt.Printf("\njob %q completed (%d steps):\n", result.Name, len(result.Steps))
	for _, s := range result.Steps {
		out := s.Output
		if out == "" {
			out = "ok"
		}
		fmt.Printf("  %-8s %s\n", s.Step, out)
	}
	fmt.Printf("labeling: %d questions\n", result.Questions)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
