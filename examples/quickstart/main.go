// Quickstart: match the two person tables of the paper's Figure 1 with
// the PyMatcher guide of Figure 2 — the smallest end-to-end tour of the
// library. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/ml"
	"repro/internal/table"
)

func main() {
	// Figure 1's tables A and B.
	sch := table.StringSchema("id", "name", "city", "state")
	a := table.New("A", sch)
	for _, r := range [][]string{
		{"a1", "Dave Smith", "Madison", "WI"},
		{"a2", "Joe Wilson", "San Jose", "CA"},
		{"a3", "Dan Smith", "Middleton", "WI"},
	} {
		if err := a.AppendStrings(r...); err != nil {
			log.Fatal(err)
		}
	}
	b := table.New("B", sch)
	for _, r := range [][]string{
		{"b1", "David D. Smith", "Madison", "WI"},
		{"b2", "Daniel W. Smith", "Middleton", "WI"},
	} {
		if err := b.AppendStrings(r...); err != nil {
			log.Fatal(err)
		}
	}
	must(a.SetKey("id"))
	must(b.SetKey("id"))

	// The figure's expected matches are our gold truth; the Oracle
	// labeler plays the user.
	gold := label.NewGold([][2]string{{"a1", "b1"}, {"a3", "b2"}})
	oracle := label.NewOracle(gold)

	// Step 0: start a session; features are auto-generated.
	s, err := core.NewSession(a, b, 1)
	must(err)
	fmt.Printf("auto-generated %d features, e.g. %v\n", s.Features.Len(), s.Features.Names()[:4])

	// Steps 1-2: the tables are tiny, so skip down-sampling and block on
	// same state (the paper's own example of a blocking heuristic).
	cand, err := s.Block(block.AttrEquivalenceBlocker{Attr: "state"})
	must(err)
	fmt.Printf("blocking on state: %d of %d pairs survive\n", cand.Len(), a.Len()*b.Len())

	// Steps 3-4: label every candidate (it is a toy) and train a tree.
	_, err = s.SampleAndLabel(cand.Len(), oracle)
	must(err)
	matches, model, err := s.TrainAndPredict(func() ml.Classifier { return &ml.DecisionTree{Seed: 1} })
	must(err)
	fmt.Printf("matcher: %s\n", model.Name())

	// Step 5: evaluate.
	for i := 0; i < matches.Len(); i++ {
		fmt.Printf("MATCH  %s ~ %s\n", matches.Get(i, "ltable_id").AsString(), matches.Get(i, "rtable_id").AsString())
	}
	conf := core.Evaluate(matches, gold)
	fmt.Printf("accuracy: %s\n", conf)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
