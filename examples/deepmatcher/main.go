// DeepMatcher: extending the ecosystem with a neural matcher, as §4.3 of
// the paper describes ("we developed a new matcher that uses deep learning
// to match textual data ... this smoothly extended PyMatcher with
// relatively little effort"). The MLP trains on labeled textual pairs and
// is compared against classical string similarity thresholding.
//
// Run with: go run ./examples/deepmatcher
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/deepmatch"
	"repro/internal/sim"
)

func main() {
	task, err := datagen.Generate(datagen.Spec{
		Name: "citations", Domain: datagen.CitationDomain(),
		SizeA: 600, SizeB: 600, MatchFraction: 0.5, Typo: 0.35, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	aIdx, _ := task.A.KeyIndex()
	bIdx, _ := task.B.KeyIndex()

	// Build textual pairs: positives from gold, negatives from shifted
	// gold pairings (hard negatives: both sides are real records).
	gold := task.Gold.Pairs()
	var pairs [][2]string
	var y []int
	for _, g := range gold {
		pairs = append(pairs, [2]string{
			task.A.Get(aIdx[g[0]], "title").AsString() + " " + task.A.Get(aIdx[g[0]], "authors").AsString(),
			task.B.Get(bIdx[g[1]], "title").AsString() + " " + task.B.Get(bIdx[g[1]], "authors").AsString(),
		})
		y = append(y, 1)
	}
	for k := range gold {
		g1, g2 := gold[k], gold[(k+3)%len(gold)]
		pairs = append(pairs, [2]string{
			task.A.Get(aIdx[g1[0]], "title").AsString() + " " + task.A.Get(aIdx[g1[0]], "authors").AsString(),
			task.B.Get(bIdx[g2[1]], "title").AsString() + " " + task.B.Get(bIdx[g2[1]], "authors").AsString(),
		})
		y = append(y, 0)
	}

	// Split 70/30.
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(len(pairs))
	cut := len(perm) * 7 / 10
	var trP, teP [][2]string
	var trY, teY []int
	for i, idx := range perm {
		if i < cut {
			trP, trY = append(trP, pairs[idx]), append(trY, y[idx])
		} else {
			teP, teY = append(teP, pairs[idx]), append(teY, y[idx])
		}
	}

	// Neural matcher.
	tm := &deepmatch.TextMatcher{Seed: 1}
	if err := tm.Fit(trP, trY); err != nil {
		log.Fatal(err)
	}
	neural := 0
	for i, p := range teP {
		if tm.Predict(p[0], p[1]) == (teY[i] == 1) {
			neural++
		}
	}

	// Classical baseline: Jaccard of word tokens thresholded at the best
	// cut found on the training split.
	bestThr, bestAcc := 0.0, 0.0
	for thr := 0.05; thr < 1; thr += 0.05 {
		correct := 0
		for i, p := range trP {
			pred := sim.Jaccard(fields(p[0]), fields(p[1])) >= thr
			if pred == (trY[i] == 1) {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(trP)); acc > bestAcc {
			bestAcc, bestThr = acc, thr
		}
	}
	classical := 0
	for i, p := range teP {
		pred := sim.Jaccard(fields(p[0]), fields(p[1])) >= bestThr
		if pred == (teY[i] == 1) {
			classical++
		}
	}

	fmt.Printf("textual citation matching, %d train / %d test pairs\n", len(trP), len(teP))
	fmt.Printf("  jaccard threshold (%.2f): %5.1f%% accuracy\n", bestThr, 100*float64(classical)/float64(len(teP)))
	fmt.Printf("  neural matcher (MLP):     %5.1f%% accuracy\n", 100*float64(neural)/float64(len(teP)))
	fmt.Println("\nthe neural matcher plugs into the same ml.Classifier interface as")
	fmt.Println("every other matcher — the ecosystem extension story of §4.3.")
}

func fields(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}
