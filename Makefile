GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet lint fix fuzz bench bench-tokens

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Determinism-under-concurrency suite: the whole tree under the race
# detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# emlint enforces the repo's concurrency, determinism, and observability
# invariants (see DESIGN.md §7). Exit 1 with file:line diagnostics on any
# violation; suppress deliberate exceptions with //emlint:allow.
lint:
	$(GO) run ./cmd/emlint ./internal/... ./cmd/...

# Applies the machine-applicable suggested fixes emlint diagnostics carry
# (e.g. hotalloc prealloc rewrites) and gofmts the touched files. Safe to
# run repeatedly: the engine is idempotent.
fix:
	$(GO) run ./cmd/emlint -fix ./internal/... ./cmd/...

# Short fuzz smoke over the text-format parsers. Override FUZZTIME for a
# longer soak, e.g. `make fuzz FUZZTIME=5m`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseRule -fuzztime=$(FUZZTIME) ./internal/rules
	$(GO) test -run=^$$ -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/table

# Regenerates BENCH_parallel.json (Workers=1 vs GOMAXPROCS on the
# parallelized hot paths).
bench:
	$(GO) run ./cmd/benchem -exp parallel

# Regenerates BENCH_tokens.json (string kernels vs interned integer
# kernels). Exits non-zero if the two paths ever disagree bit-for-bit.
bench-tokens:
	$(GO) run ./cmd/benchem -exp tokens
