GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet lint lint-perf fix fuzz bench bench-tokens bench-scaling bench-serve bench-serve-scaling

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Determinism-under-concurrency suite: the whole tree under the race
# detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# emlint enforces the repo's concurrency, determinism, and observability
# invariants (see DESIGN.md §7). Exit 1 with file:line diagnostics on any
# violation; suppress deliberate exceptions with //emlint:allow.
lint:
	$(GO) run ./cmd/emlint ./internal/... ./cmd/...

# Performance-contract verification (DESIGN.md §12): escapecheck compiles
# each //emlint:zeroalloc / //emlint:hotpath package with -gcflags=-m=2
# and fails on any escape or inlining regression not grandfathered by
# lint/escape_baseline.json; allocguard requires every zeroalloc function
# to carry a testing.AllocsPerRun guard. After a deliberate change (or a
# Go toolchain bump), refresh the baseline with:
#   $(GO) run ./cmd/emlint -update-baseline ./internal/... ./cmd/...
lint-perf:
	$(GO) run ./cmd/emlint -checks=escapecheck,allocguard \
		-escape-report=escape-report.json ./internal/... ./cmd/...

# Applies the machine-applicable suggested fixes emlint diagnostics carry
# (e.g. hotalloc prealloc rewrites) and gofmts the touched files. Safe to
# run repeatedly: the engine is idempotent.
fix:
	$(GO) run ./cmd/emlint -fix ./internal/... ./cmd/...

# Short fuzz smoke over the text-format parsers. Override FUZZTIME for a
# longer soak, e.g. `make fuzz FUZZTIME=5m`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseRule -fuzztime=$(FUZZTIME) ./internal/rules
	$(GO) test -run=^$$ -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/table

# Regenerates BENCH_parallel.json: the workers x n scaling sweep over the
# similarity join and forest training. Warns (cores_ok=false) on a 1-core
# box; add -requirecores to refuse instead.
bench:
	$(GO) run ./cmd/benchem -exp parallel

# Smoke-size scaling sweep: same workloads and gates as `bench`, sized for
# CI. Fails on any output divergence from Workers=1, and on a runner with
# >= 4 cores also fails when workers=4 speedup drops below MINSPEEDUP
# (slightly under the 1.5x bar of the full bench to absorb shared-vCPU
# noise).
MINSPEEDUP ?= 1.3
bench-scaling:
	$(GO) run ./cmd/benchem -exp parallel -scalen 2000,20000 -scaleworkers 1,2,4 \
		-minspeedup $(MINSPEEDUP) -benchout /tmp/BENCH_parallel_smoke.json

# Regenerates BENCH_tokens.json (string kernels vs interned integer
# kernels). Exits non-zero if the two paths ever disagree bit-for-bit.
bench-tokens:
	$(GO) run ./cmd/benchem -exp tokens

# Regenerates BENCH_serve.json: sustained QPS and tail latency of the
# incremental serving core across the ingest-interference sweep, the
# match-workers x ingest reader-scaling cells, plus the overload burst.
# Exits non-zero when the incrementally-maintained corpus diverges from a
# from-scratch rebuild, the flat forest diverges from the pointer
# classifier, backpressure never engages, or (on a >= 4-core box) the
# workers=4 query-only QPS scaling falls below 1.5x.
bench-serve:
	$(GO) run ./cmd/benchem -exp serve

# Smoke-size reader-scaling sweep: same gates as `bench-serve`, sized for
# CI. The QPS gate arms only when the runner has >= 4 cores (cores_ok);
# SERVEMINSPEEDUP sits slightly under the full bench's 1.5x bar to absorb
# shared-vCPU noise. The two identity gates (rebuild, flat-vs-pointer)
# hold at any core count.
SERVEMINSPEEDUP ?= 1.3
bench-serve-scaling:
	$(GO) run ./cmd/benchem -exp serve -serven 1500 -servequeries 600 \
		-serveworkers 1,2,4 -serveminspeedup $(SERVEMINSPEEDUP) \
		-serveout /tmp/BENCH_serve_smoke.json
