GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Determinism-under-concurrency suite: the parallel execution layer and
# every package driving it, under the race detector.
race:
	$(GO) test -race ./internal/parallel ./internal/ml ./internal/block ./internal/obs ./internal/cloud

vet:
	$(GO) vet ./...

# Regenerates BENCH_parallel.json (Workers=1 vs GOMAXPROCS on the
# parallelized hot paths).
bench:
	$(GO) run ./cmd/benchem -exp parallel
